// Trace record / serialise / replay, including the replay-equivalence
// property: a recorded benchmark simulates bit-identically to the original.
#include <gtest/gtest.h>

#include <sstream>

#include "core/policy_factory.hpp"
#include "core/uvm_system.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_workload.hpp"
#include "workloads/benchmarks.hpp"

namespace uvmsim {
namespace {

Trace tiny_trace() {
  Trace t;
  t.name = "tiny";
  t.footprint_pages = 100;
  t.pattern = PatternType::kThrashing;
  t.streams.resize(2);
  t.streams[0].global_warp_index = 0;
  t.streams[0].accesses = {{1, 10}, {2, 20}, {1, 30}};
  t.streams[1].global_warp_index = 1;
  t.streams[1].accesses = {{99, 5}};
  return t;
}

TEST(TraceIo, RoundTripsThroughStream) {
  const Trace t = tiny_trace();
  std::stringstream ss;
  write_trace(ss, t);
  const Trace r = read_trace(ss);
  EXPECT_EQ(r.name, "tiny");
  EXPECT_EQ(r.footprint_pages, 100u);
  EXPECT_EQ(r.pattern, PatternType::kThrashing);
  ASSERT_EQ(r.streams.size(), 2u);
  ASSERT_EQ(r.streams[0].accesses.size(), 3u);
  EXPECT_EQ(r.streams[0].accesses[1].page, 2u);
  EXPECT_EQ(r.streams[0].accesses[1].think, 20u);
  EXPECT_EQ(r.streams[1].accesses[0].page, 99u);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "definitely not a trace file";
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsTruncation) {
  const Trace t = tiny_trace();
  std::stringstream ss;
  write_trace(ss, t);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream half(bytes);
  EXPECT_THROW((void)read_trace(half), std::runtime_error);
}

TEST(TraceIo, RejectsOutOfFootprintAccess) {
  Trace t = tiny_trace();
  t.streams[0].accesses.push_back({1000, 1});  // footprint is 100
  std::stringstream ss;
  write_trace(ss, t);
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/uvmsim_trace_test.trc";
  save_trace(path, tiny_trace());
  const Trace r = load_trace(path);
  EXPECT_EQ(r.streams.size(), 2u);
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/dir/x.trc"), std::runtime_error);
}

TEST(TraceRecord, CapturesAllWarpStreams) {
  const auto wl = make_benchmark("STN");
  const Trace t = record_trace(*wl, /*total_warps=*/16, /*seed=*/42);
  EXPECT_EQ(t.streams.size(), 16u);
  EXPECT_EQ(t.footprint_pages, wl->footprint_pages());
  u64 total = 0;
  for (const auto& s : t.streams) total += s.accesses.size();
  EXPECT_GT(total, 0u);
}

TEST(TraceWorkloadTest, ReplaysRecordedAccesses) {
  const Trace t = tiny_trace();
  TraceWorkload wl{Trace(t)};
  auto s0 = wl.make_stream({0, 2, 999});  // seed irrelevant for replay
  Access a;
  ASSERT_TRUE(s0->next(a));
  EXPECT_EQ(a.page, 1u);
  EXPECT_EQ(a.think, 10u);
  ASSERT_TRUE(s0->next(a));
  ASSERT_TRUE(s0->next(a));
  EXPECT_FALSE(s0->next(a));
}

TEST(TraceWorkloadTest, WarpWithoutStreamIsEmpty) {
  TraceWorkload wl{tiny_trace()};
  auto s = wl.make_stream({7, 8, 0});
  Access a;
  EXPECT_FALSE(s->next(a));
}

TEST(TextTrace, ParsesHeaderAndAccesses) {
  std::stringstream ss;
  ss << "# name: mykernel\n# pattern: 4\n# footprint_pages: 50\n"
     << "0 1 10\n0 2\n3 49 77\n";
  const Trace t = read_text_trace(ss);
  EXPECT_EQ(t.name, "mykernel");
  EXPECT_EQ(t.pattern, PatternType::kThrashing);
  EXPECT_EQ(t.footprint_pages, 50u);
  ASSERT_EQ(t.streams.size(), 2u);  // warps 0 and 3
  EXPECT_EQ(t.streams[0].accesses.size(), 2u);
  EXPECT_EQ(t.streams[0].accesses[1].think, 100u);  // default think
  EXPECT_EQ(t.streams[1].global_warp_index, 3u);
  EXPECT_EQ(t.streams[1].accesses[0].think, 77u);
}

TEST(TextTrace, InfersFootprintWhenAbsent) {
  std::stringstream ss;
  ss << "0 10\n1 99\n";
  EXPECT_EQ(read_text_trace(ss).footprint_pages, 100u);
}

TEST(TextTrace, RejectsGarbageAndEmpty) {
  std::stringstream bad;
  bad << "0 not-a-page\n";
  EXPECT_THROW((void)read_text_trace(bad), std::runtime_error);
  std::stringstream empty;
  EXPECT_THROW((void)read_text_trace(empty), std::runtime_error);
}

TEST(TextTrace, RejectsAccessOutsideDeclaredFootprint) {
  std::stringstream ss;
  ss << "# footprint_pages: 5\n0 9\n";
  EXPECT_THROW((void)read_text_trace(ss), std::runtime_error);
}

TEST(TextTrace, RoundTripsThroughTextForm) {
  const Trace original = tiny_trace();
  std::stringstream ss;
  write_text_trace(ss, original);
  const Trace back = read_text_trace(ss);
  EXPECT_EQ(back.footprint_pages, original.footprint_pages);
  EXPECT_EQ(back.pattern, original.pattern);
  ASSERT_EQ(back.streams.size(), original.streams.size());
  for (std::size_t i = 0; i < back.streams.size(); ++i) {
    ASSERT_EQ(back.streams[i].accesses.size(), original.streams[i].accesses.size());
    for (std::size_t j = 0; j < back.streams[i].accesses.size(); ++j) {
      EXPECT_EQ(back.streams[i].accesses[j].page,
                original.streams[i].accesses[j].page);
      EXPECT_EQ(back.streams[i].accesses[j].think,
                original.streams[i].accesses[j].think);
    }
  }
}

// The headline property: record -> replay produces a bit-identical run.
TEST(TraceWorkloadTest, ReplayEquivalence) {
  SystemConfig sys;
  sys.num_sms = 4;  // keep the recording small
  const PolicyConfig pol = presets::cppe();

  const auto original = make_benchmark("NW");
  UvmSystem direct(sys, pol, *original, 0.5);
  const RunResult a = direct.run();

  const Trace t =
      record_trace(*original, sys.num_sms * sys.warps_per_sm, pol.seed);
  TraceWorkload replay{Trace(t)};
  UvmSystem traced(sys, pol, replay, 0.5);
  const RunResult b = traced.run();

  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.driver.page_faults, b.driver.page_faults);
  EXPECT_EQ(a.driver.pages_migrated_in, b.driver.pages_migrated_in);
  EXPECT_EQ(a.driver.pages_evicted, b.driver.pages_evicted);
  EXPECT_EQ(a.gpu.accesses, b.gpu.accesses);
}

}  // namespace
}  // namespace uvmsim
