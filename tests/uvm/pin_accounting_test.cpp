// Pin/unpin accounting across the split driver (ISSUE satellite): a chunk
// with an in-flight migration targeting it is pinned and must never be
// selected for eviction, and every pin taken at admission must be released
// at completion — across overlapping plans, gated (prefetch_when_full)
// service, and eviction pressure.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "prefetch/tree_neighborhood.hpp"
#include "uvm/driver.hpp"

namespace uvmsim {
namespace {

/// LRU with an audit: every victim the engine is offered is recorded and
/// checked against the pin invariant at selection time.
class AuditedLru final : public EvictionPolicy {
 public:
  using EvictionPolicy::EvictionPolicy;

  [[nodiscard]] ChunkId select_victim() override {
    const ChunkId v = lru_unpinned();
    if (v != kInvalidChunk) audit(v);
    return v;
  }
  [[nodiscard]] std::vector<ChunkId> select_victims(u64 max_victims) override {
    auto out = lru_unpinned_batch(max_victims);
    for (ChunkId v : out) audit(v);
    return out;
  }
  [[nodiscard]] bool reorder_on_touch() const override { return true; }
  [[nodiscard]] std::string name() const override { return "AuditedLRU"; }

  std::vector<ChunkId> victims;

 private:
  void audit(ChunkId v) {
    EXPECT_FALSE(chain().entry(v).pinned())
        << "policy offered pinned chunk " << v << " for eviction";
    victims.push_back(v);
  }
};

struct PinFixture : ::testing::Test {
  EventQueue eq;
  SystemConfig sys;
  PolicyConfig pol;
  AuditedLru* lru = nullptr;  // owned by the driver

  std::unique_ptr<UvmDriver> make_driver(u64 footprint_pages,
                                         u64 capacity_pages) {
    auto d = std::make_unique<UvmDriver>(eq, sys, pol, footprint_pages,
                                         capacity_pages);
    auto policy = std::make_unique<AuditedLru>(d->chain());
    lru = policy.get();
    d->set_policy(std::move(policy));
    return d;
  }
};

// Gated service (prefetch_when_full = false) fills a chunk one page at a
// time, so 15 concurrent single-page migrations all pin the same chunk.
// Eviction pressure arriving while those pins are live must fall on the
// unpinned LRU chunk, and every pin must be gone once the queue drains.
TEST_F(PinFixture, PinnedChunkSurvivesEvictionPressure) {
  pol.prefetch = PrefetchKind::kLocality;
  pol.prefetch_when_full = false;
  pol.pre_evict_watermark_chunks = 0;
  pol.driver_concurrency = 16;
  auto d = make_driver(16 * 16, 2 * 16);
  d->set_prefetcher(std::make_unique<LocalityPrefetcher>());

  d->fault(first_page_of_chunk(0), [] {});  // whole chunk 0 (not yet full)
  eq.run();
  d->fault(first_page_of_chunk(1), [] {});  // whole chunk 1: memory now full
  eq.run();
  ASSERT_EQ(d->free_frames(), 0u);
  ASSERT_TRUE(d->memory_full());

  d->fault(32, [] {});  // gated single-page plan; evicts LRU chunk 0
  eq.run();
  ASSERT_TRUE(d->page_resident(32));
  ASSERT_EQ(d->free_frames(), 15u);

  // 15 gated faults extend chunk 2 concurrently: 15 live pins on it.
  for (PageId p = 33; p < 48; ++p) d->fault(p, [] {});
  ASSERT_EQ(d->free_frames(), 0u);
  ASSERT_EQ(d->chain().entry(2).pin_count, 15u);

  // Pressure while pinned: the victim must be chunk 1, never chunk 2.
  d->fault(first_page_of_chunk(3), [] {});
  EXPECT_FALSE(d->page_resident(first_page_of_chunk(1)));
  EXPECT_TRUE(d->chain().contains(2));

  eq.run();
  for (PageId p = 32; p < 48; ++p) EXPECT_TRUE(d->page_resident(p));
  for (ChunkId v : lru->victims) EXPECT_NE(v, 2u);
  for (const ChunkEntry& e : d->chain()) EXPECT_EQ(e.pin_count, 0u);
}

// Overlapping tree-prefetch plans under heavy oversubscription: clamped
// neighbourhood plans repeatedly extend partially-resident chunks while
// other migrations are in flight. Whatever interleaving results, pins must
// balance to zero and frame accounting must conserve capacity.
TEST_F(PinFixture, OverlappingTreePlansBalancePins) {
  pol.prefetch = PrefetchKind::kTreeNeighborhood;
  pol.driver_concurrency = 8;
  auto d = make_driver(512 * 16, 32 * 16);
  d->set_prefetcher(std::make_unique<TreeNeighborhoodPrefetcher>());

  const PageId footprint = d->footprint_pages();
  PageId p = 0;
  for (int i = 0; i < 200; ++i) {
    d->fault(p, [] {});
    p = (p + 97) % footprint;  // strides across chunks and 2MB regions
    if (i % 8 == 7) eq.run();
  }
  eq.run();

  for (const ChunkEntry& e : d->chain()) EXPECT_EQ(e.pin_count, 0u);
  u64 resident = 0;
  for (const ChunkEntry& e : d->chain()) resident += e.resident.count();
  EXPECT_EQ(d->free_frames() + resident, d->capacity_pages());
  EXPECT_EQ(d->stats().pages_migrated_in - d->stats().pages_evicted, resident);
  EXPECT_GT(d->stats().chunks_evicted, 0u);  // pressure actually occurred
}

}  // namespace
}  // namespace uvmsim
