// Large-pages mode through the whole driver pipeline: end-to-end lazy
// coalescing from the fault path, splinter-then-evict under at-quota
// partitioned pressure (the make_room progress guard must survive chains
// whose every chunk sits in a coalesced frame), and churn leaving the
// FramePool/PageTable accounting exact (docs/memory.md).
#include <gtest/gtest.h>

#include <set>

#include "policy/lru.hpp"
#include "prefetch/prefetcher.hpp"
#include "uvm/driver.hpp"

namespace uvmsim {
namespace {

struct LargePagesDriverFixture : ::testing::Test {
  EventQueue eq;
  SystemConfig sys;
  PolicyConfig pol;

  LargePagesDriverFixture() { pol.large_pages = true; }

  std::unique_ptr<UvmDriver> make_driver(u64 footprint, u64 capacity) {
    auto d = std::make_unique<UvmDriver>(eq, sys, pol, footprint, capacity);
    d->set_policy(std::make_unique<LruPolicy>(d->chain()));
    d->set_prefetcher(std::make_unique<LocalityPrefetcher>());
    return d;
  }
};

TEST_F(LargePagesDriverFixture, FaultingAWholeRegionCoalescesIt) {
  // Capacity of exactly one 2 MB slot; the region fits with no eviction.
  auto d = make_driver(kLargePages, kLargePages);
  ASSERT_TRUE(d->large_pages_enabled());
  int wakes = 0;
  for (PageId p = 0; p < kLargePages; ++p) d->fault(p, [&] { ++wakes; });
  eq.run();

  EXPECT_EQ(wakes, static_cast<int>(kLargePages));
  // Every page was demanded, so every chunk went fully touched, the deferred
  // scans ran, and the region folded into one large mapping.
  EXPECT_EQ(d->stats().coalesces, 1u);
  EXPECT_EQ(d->stats().splinters, 0u);
  EXPECT_TRUE(d->large_frames()->coalesced(0));
  EXPECT_TRUE(d->page_table().large_mapped(0));
  EXPECT_EQ(d->page_table().mapped_pages(), kLargePages);
  EXPECT_EQ(d->free_frames(), 0u);
}

TEST_F(LargePagesDriverFixture, PartitionedAtQuotaPressureSplintersNotStalls) {
  // Tenant A (two regions) gets a quota of one 2 MB slot plus the
  // pre-eviction watermark's headroom (at *exactly* one slot the watermark
  // would claw a chunk straight back and the region could never stay fully
  // resident); tenant B exists only to make the split real and never
  // faults. A's first region coalesces at quota, then faults to its second
  // region must make room inside a chain whose every non-headroom chunk
  // sits in the coalesced frame — the non-progress guard has to splinter,
  // not spin.
  const u64 quota_a = kLargePages + 2 * kChunkPages;
  const u64 capacity = quota_a * 3 / 2;  // A's proportional share is 2/3
  TenantTable table;
  table.add("A", 2 * kLargePages);
  table.add("B", kLargePages);
  auto d = std::make_unique<UvmDriver>(eq, sys, pol, table.span_pages(),
                                       capacity);
  d->configure_tenancy(&table, TenantMode::kPartitioned, EvictionScope::kSelf);
  for (u64 dom = 0; dom < 2; ++dom)
    d->set_domain_policy(dom,
                         std::make_unique<LruPolicy>(d->chains().chain(dom)));
  // Demand-only: a locality prefetcher would pull region-1 chunks into the
  // one slot while region 0 is still filling, scattering its frames.
  d->set_prefetcher(std::make_unique<NoPrefetcher>());
  ASSERT_EQ(table.quota_frames(0), quota_a);

  int wakes = 0;
  for (PageId p = 0; p < kLargePages; ++p) d->fault(p, [&] { ++wakes; });
  eq.run();
  ASSERT_EQ(wakes, static_cast<int>(kLargePages));
  ASSERT_GE(d->stats().coalesces, 1u);
  ASSERT_TRUE(d->large_frames()->coalesced(0));
  EXPECT_EQ(table.used_frames(0), kLargePages);  // at quota exactly

  // A warm sibling forbids whole-frame eviction, forcing the splinter path
  // on the first victim.
  d->note_touch(0);
  for (PageId p = kLargePages; p < 2 * kLargePages; ++p)
    d->fault(p, [&] { ++wakes; });
  eq.run();

  EXPECT_EQ(wakes, static_cast<int>(2 * kLargePages));
  EXPECT_GE(d->stats().splinters, 1u);
  // Partitioned quotas held throughout the churn, and B was never touched.
  EXPECT_LE(table.used_frames(0), quota_a);
  EXPECT_EQ(table.used_frames(1), 0u);
  EXPECT_EQ(d->free_frames() + d->page_table().mapped_pages(), capacity);
}

TEST_F(LargePagesDriverFixture, ChurnLeavesAccountingExact) {
  // Two regions compete for one slot plus a small 4 KB tail: coalesce,
  // splinter/whole-evict, re-coalesce, repeatedly. After the dust settles
  // the pool's free count, the page table and the per-frame bitmap must
  // agree exactly.
  const u64 capacity = kLargePages + 4 * kChunkPages;
  auto d = make_driver(2 * kLargePages, capacity);
  int wakes = 0;
  for (PageId p = 0; p < kLargePages; ++p) d->fault(p, [&] { ++wakes; });
  eq.run();
  ASSERT_GE(d->stats().coalesces, 1u);
  for (PageId p = kLargePages; p < 2 * kLargePages; ++p)
    d->fault(p, [&] { ++wakes; });
  eq.run();
  for (PageId p = 0; p < kLargePages; ++p) d->fault(p, [&] { ++wakes; });
  eq.run();

  EXPECT_EQ(wakes, static_cast<int>(3 * kLargePages));
  // Every coalesced frame that left did so by splinter or whole eviction.
  EXPECT_GE(d->stats().splinters + d->stats().large_frames_evicted, 1u);
  EXPECT_EQ(d->free_frames() + d->page_table().mapped_pages(), capacity);
  // Each resident page holds a distinct, genuinely-allocated frame.
  std::set<FrameId> frames;
  for (PageId p = 0; p < 2 * kLargePages; ++p) {
    if (!d->page_table().resident(p)) continue;
    const FrameId f = d->page_table().frame_of(p);
    ASSERT_LT(f, capacity);
    EXPECT_FALSE(d->frame_pool().frame_free(f));
    EXPECT_TRUE(frames.insert(f).second) << "frame " << f << " double-mapped";
  }
  EXPECT_EQ(frames.size(), d->page_table().mapped_pages());
}

}  // namespace
}  // namespace uvmsim
