// EvictionEngine::make_room non-progress guard (docs/multitenancy.md).
//
// Regression: make_room loops "evict a round, re-check the deficit" until
// the initiator's admissible frames reach the target. A round whose
// evictions free nothing the initiator can use — victims with no resident
// pages, or an at-quota initiator in partitioned mode whose own chunks
// can't close the gap — used to spin that loop forever (or drain every
// chunk in the system). It must instead report starvation and return.
#include "uvm/eviction_engine.hpp"

#include <gtest/gtest.h>

#include "prefetch/prefetcher.hpp"
#include "sim/event_queue.hpp"
#include "tenancy/tenant.hpp"
#include "tlb/page_table.hpp"
#include "uvm/chain_set.hpp"
#include "uvm/driver_types.hpp"
#include "uvm/frame_pool.hpp"
#include "policy/lru.hpp"

namespace uvmsim {
namespace {

struct EngineFixture {
  EventQueue eq;
  ChainSet chains{64};
  PageTable pt;
  FramePool frames;
  DriverStats stats;
  NoPrefetcher prefetcher;
  EvictionEngine engine;

  explicit EngineFixture(u64 capacity_pages)
      : frames(capacity_pages, /*watermark_pages=*/0),
        engine(eq, chains, pt, frames, /*pcie_page_cycles=*/100, stats) {
    chains.set_policy(0, std::make_unique<LruPolicy>(chains.chain(0)));
    engine.set_prefetcher(&prefetcher);
  }

  /// Insert `chunk` with all kChunkPages resident: pages mapped, frames
  /// reserved and bound — the state a completed migration leaves behind.
  void add_resident_chunk(ChunkId chunk, TenantId owner = kNoTenant) {
    chains.chain_of_chunk(chunk).insert(chunk);
    ChunkEntry& e = *chains.find(chunk);
    frames.reserve(kChunkPages, owner);
    const PageId base = first_page_of_chunk(chunk);
    for (u32 i = 0; i < kChunkPages; ++i) {
      e.resident.set(i);
      pt.map(base + i, frames.allocate());
    }
  }

  /// Insert `chunk` as a shell: present in the chain, zero resident pages
  /// (every page already unmapped — e.g. surrendered to a fetching peer).
  void add_shell_chunk(ChunkId chunk) {
    chains.chain_of_chunk(chunk).insert(chunk);
  }
};

TEST(MakeRoom, EvictsResidentChunksUntilTargetIsFree) {
  EngineFixture f(4 * kChunkPages);
  for (ChunkId c = 0; c < 4; ++c) f.add_resident_chunk(c);
  ASSERT_EQ(f.frames.free_frames(), 0u);

  const auto r = f.engine.make_room(2 * kChunkPages);
  EXPECT_FALSE(r.starved);
  EXPECT_EQ(r.evicted, 2u);
  EXPECT_GE(f.frames.free_frames(), 2 * kChunkPages);
  EXPECT_EQ(f.stats.chunks_evicted, 2u);
}

TEST(MakeRoom, AllVictimsPinnedReportsStarvation) {
  EngineFixture f(2 * kChunkPages);
  for (ChunkId c = 0; c < 2; ++c) {
    f.add_resident_chunk(c);
    f.chains.find(c)->pin_count = 1;
  }
  const auto r = f.engine.make_room(kChunkPages);
  EXPECT_TRUE(r.starved);
  EXPECT_EQ(r.evicted, 0u);
}

// The regression itself: victims that free no frames must not livelock the
// deficit loop. With three shell chunks and a 16-page target, each round
// selects ceil(16/16) = 1 victim, evicts it, and frees nothing; unguarded,
// the loop would spin selecting the next shell until the chain ran dry and
// then keep spinning on an empty selection. The guard turns the first
// fruitless round into starvation.
TEST(MakeRoom, ShellChunkRoundWithoutProgressStarvesInsteadOfLooping) {
  EngineFixture f(kChunkPages);
  f.frames.reserve(kChunkPages);  // pool fully committed elsewhere
  for (ChunkId c = 0; c < 3; ++c) f.add_shell_chunk(c);

  const auto r = f.engine.make_room(kChunkPages);
  EXPECT_TRUE(r.starved);
  EXPECT_EQ(r.evicted, 1u);            // one fruitless round, then stop
  EXPECT_EQ(f.chains.chain(0).size(), 2u);  // the other shells survive
  EXPECT_EQ(f.frames.free_frames(), 0u);
}

// Partitioned mode, at-quota initiator: the only victims partitioning
// allows are the initiator's own chunks, and when those free nothing (shell
// chunks here), admissible_frames(initiator) = min(free, quota headroom)
// cannot move. The round must end in starvation, not a loop.
TEST(MakeRoom, AtQuotaPartitionedInitiatorStarvesWithoutProgress) {
  EngineFixture f(4 * kChunkPages);
  TenantTable table;
  const TenantId a = table.add("a", 2 * kChunkPages);
  const TenantId b = table.add("b", 2 * kChunkPages);
  table.compute_quotas(4 * kChunkPages);
  f.frames.attach_tenants(&table, TenantMode::kPartitioned);
  f.chains.configure_domains(2, &table);
  for (u64 d = 0; d < 2; ++d)
    f.chains.set_policy(d, std::make_unique<LruPolicy>(f.chains.chain(d)));
  f.engine.set_tenancy(&table, TenantMode::kPartitioned, EvictionScope::kGlobal);

  // Tenant a sits exactly at quota; its one resident-set-free shell chunk
  // is the only victim partitioning will offer it.
  table.note_reserved(a, table.quota_frames(a));
  f.frames.reserve(table.quota_frames(a));
  const ChunkId own = table.info(a).base / kChunkPages;
  f.add_shell_chunk(own);
  ASSERT_EQ(f.frames.admissible_frames(a), 0u);

  const auto r = f.engine.make_room(kChunkPages, a);
  EXPECT_TRUE(r.starved);
  EXPECT_LE(r.evicted, 1u);
  // Tenant b's world is untouched: no cross-tenant drain happened.
  EXPECT_EQ(table.stats(b).chunks_evicted, 0u);
}

}  // namespace
}  // namespace uvmsim
