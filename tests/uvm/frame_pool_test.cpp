// FramePool: frame hand-out order, reserve/release accounting, and the live
// "memory full" definition that replaced the driver's old sticky
// chunks-evicted flag (ISSUE satellite: memory_full() conflated "an
// eviction ever happened" with current pressure).
#include "uvm/frame_pool.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(FramePool, HandsOutFreshFramesInAscendingOrder) {
  FramePool pool(64, 0);
  pool.reserve(3);
  EXPECT_EQ(pool.allocate(), 0u);
  EXPECT_EQ(pool.allocate(), 1u);
  EXPECT_EQ(pool.allocate(), 2u);
  EXPECT_EQ(pool.free_frames(), 61u);
}

TEST(FramePool, RecyclesReleasedFramesLifoBeforeFreshOnes) {
  FramePool pool(64, 0);
  pool.reserve(2);
  const FrameId a = pool.allocate();
  const FrameId b = pool.allocate();
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.free_frames(), 64u);
  pool.reserve(3);
  EXPECT_EQ(pool.allocate(), b);  // LIFO: most recently released first
  EXPECT_EQ(pool.allocate(), a);
  EXPECT_EQ(pool.allocate(), 2u);  // then the next never-used frame
}

TEST(FramePool, ReserveTracksAdmissionBeforeFramesAreBound) {
  FramePool pool(32, 0);
  pool.reserve(32);
  EXPECT_EQ(pool.free_frames(), 0u);
  // Accounting is split from binding: all 32 frames are still allocatable.
  for (u64 i = 0; i < 32; ++i) (void)pool.allocate();
}

// Before the first eviction the watermark is not yet maintained, so
// pressure keys only on whole-chunk headroom: the fill phase of an
// oversubscribed run is not "full" until free frames dip below one chunk.
TEST(FramePool, FillPhasePressureIgnoresWatermark) {
  FramePool pool(64, 16);
  EXPECT_FALSE(pool.under_pressure());
  pool.reserve(48);  // free = 16: one chunk still fits
  EXPECT_FALSE(pool.under_pressure());
  pool.reserve(1);  // free = 15: a whole-chunk migration no longer fits
  EXPECT_TRUE(pool.under_pressure());
}

// Once eviction begins, the pre-eviction headroom counts as claimed: the
// driver keeps `watermark` frames free on purpose, so they must not make
// memory look comfortable.
TEST(FramePool, AfterEvictionPressureIncludesWatermarkHeadroom) {
  FramePool pool(64, 16);
  pool.reserve(64);
  for (u64 i = 0; i < 64; ++i) (void)pool.allocate();
  EXPECT_TRUE(pool.under_pressure());
  for (FrameId f = 0; f < 16; ++f) pool.release(f);  // evict one chunk
  // free = 16 < 16 (chunk) + 16 (watermark): still under pressure.
  EXPECT_TRUE(pool.evictions_seen());
  EXPECT_TRUE(pool.under_pressure());
}

// The satellite fix itself: the old rule (`chunks_evicted > 0 || free <
// kChunkPages`) latched "full" forever after the first eviction. Pressure
// is now live — if frames free back up past chunk + watermark headroom,
// the pool stops reporting pressure even though evictions happened.
TEST(FramePool, PressureClearsWhenFramesFreeBackUp) {
  FramePool pool(64, 16);
  pool.reserve(64);
  for (u64 i = 0; i < 64; ++i) (void)pool.allocate();
  for (FrameId f = 0; f < 32; ++f) pool.release(f);  // two chunks freed
  EXPECT_TRUE(pool.evictions_seen());
  // free = 32 >= 16 + 16: a chunk fits beyond the watermark headroom.
  EXPECT_FALSE(pool.under_pressure());
  pool.reserve(1);
  EXPECT_TRUE(pool.under_pressure());  // and returns as soon as it is spent
}

}  // namespace
}  // namespace uvmsim
