// FramePool: frame hand-out order, reserve/release accounting, and the live
// "memory full" definition that replaced the driver's old sticky
// chunks-evicted flag (ISSUE satellite: memory_full() conflated "an
// eviction ever happened" with current pressure).
#include "uvm/frame_pool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace uvmsim {
namespace {

TEST(FramePool, HandsOutFreshFramesInAscendingOrder) {
  FramePool pool(64, 0);
  pool.reserve(3);
  EXPECT_EQ(pool.allocate(), 0u);
  EXPECT_EQ(pool.allocate(), 1u);
  EXPECT_EQ(pool.allocate(), 2u);
  EXPECT_EQ(pool.free_frames(), 61u);
}

TEST(FramePool, RecyclesReleasedFramesLifoBeforeFreshOnes) {
  FramePool pool(64, 0);
  pool.reserve(2);
  const FrameId a = pool.allocate();
  const FrameId b = pool.allocate();
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.free_frames(), 64u);
  pool.reserve(3);
  EXPECT_EQ(pool.allocate(), b);  // LIFO: most recently released first
  EXPECT_EQ(pool.allocate(), a);
  EXPECT_EQ(pool.allocate(), 2u);  // then the next never-used frame
}

TEST(FramePool, ReserveTracksAdmissionBeforeFramesAreBound) {
  FramePool pool(32, 0);
  pool.reserve(32);
  EXPECT_EQ(pool.free_frames(), 0u);
  // Accounting is split from binding: all 32 frames are still allocatable.
  for (u64 i = 0; i < 32; ++i) (void)pool.allocate();
}

// Before the first eviction the watermark is not yet maintained, so
// pressure keys only on whole-chunk headroom: the fill phase of an
// oversubscribed run is not "full" until free frames dip below one chunk.
TEST(FramePool, FillPhasePressureIgnoresWatermark) {
  FramePool pool(64, 16);
  EXPECT_FALSE(pool.under_pressure());
  pool.reserve(48);  // free = 16: one chunk still fits
  EXPECT_FALSE(pool.under_pressure());
  pool.reserve(1);  // free = 15: a whole-chunk migration no longer fits
  EXPECT_TRUE(pool.under_pressure());
}

// Once eviction begins, the pre-eviction headroom counts as claimed: the
// driver keeps `watermark` frames free on purpose, so they must not make
// memory look comfortable.
TEST(FramePool, AfterEvictionPressureIncludesWatermarkHeadroom) {
  FramePool pool(64, 16);
  pool.reserve(64);
  for (u64 i = 0; i < 64; ++i) (void)pool.allocate();
  EXPECT_TRUE(pool.under_pressure());
  for (FrameId f = 0; f < 16; ++f) pool.release(f);  // evict one chunk
  // free = 16 < 16 (chunk) + 16 (watermark): still under pressure.
  EXPECT_TRUE(pool.evictions_seen());
  EXPECT_TRUE(pool.under_pressure());
}

// The satellite fix itself: the old rule (`chunks_evicted > 0 || free <
// kChunkPages`) latched "full" forever after the first eviction. Pressure
// is now live — if frames free back up past chunk + watermark headroom,
// the pool stops reporting pressure even though evictions happened.
TEST(FramePool, PressureClearsWhenFramesFreeBackUp) {
  FramePool pool(64, 16);
  pool.reserve(64);
  for (u64 i = 0; i < 64; ++i) (void)pool.allocate();
  for (FrameId f = 0; f < 32; ++f) pool.release(f);  // two chunks freed
  EXPECT_TRUE(pool.evictions_seen());
  // free = 32 >= 16 + 16: a chunk fits beyond the watermark headroom.
  EXPECT_FALSE(pool.under_pressure());
  pool.reserve(1);
  EXPECT_TRUE(pool.under_pressure());  // and returns as soon as it is spent
}

// --- Large-frame (2 MB) slot binding — Mosaic's CoCoA (docs/memory.md) -----

// A 2-slot pool: frames [0, 512) are slot 0, [512, 1024) slot 1.
constexpr u64 kLargeCap = 2 * kLargePages;

TEST(FramePoolLarge, RegionsBindDistinctSlotsAndGetContiguousFrames) {
  FramePool pool(kLargeCap, 0);
  pool.enable_large_frames();
  EXPECT_TRUE(pool.large_mode());
  EXPECT_EQ(pool.large_slots(), 2u);

  // Region 0 binds slot 0: every page lands on frame slot_base + offset.
  pool.reserve(3);
  EXPECT_EQ(pool.allocate_for(0), 0u);
  EXPECT_EQ(pool.allocate_for(7), 7u);
  EXPECT_EQ(pool.allocate_for(kLargePages - 1), kLargePages - 1);
  // Region 1 binds the next slot, not interleaving into slot 0.
  pool.reserve(2);
  EXPECT_EQ(pool.allocate_for(kLargePages + 0), kLargePages + 0);
  EXPECT_EQ(pool.allocate_for(kLargePages + 9), kLargePages + 9);
}

TEST(FramePoolLarge, UnboundRegionFallsBackToAnyFreeFrame) {
  FramePool pool(kLargeCap, 0);
  pool.enable_large_frames();
  pool.reserve(3);
  EXPECT_EQ(pool.allocate_for(0), 0u);                      // region 0 -> slot 0
  EXPECT_EQ(pool.allocate_for(kLargePages), kLargePages);   // region 1 -> slot 1
  // Region 2 finds every slot bound: it takes whatever is free and stays
  // small. The binding is a preference, never a reservation.
  const FrameId f = pool.allocate_for(2 * kLargePages + 5);
  EXPECT_EQ(f, 1u);  // lowest free frame, not 2*kLargePages+5 (out of range)
  EXPECT_EQ(pool.free_frames(), kLargeCap - 3);
}

TEST(FramePoolLarge, PreferredFrameTakenMeansFallbackNotFailure) {
  FramePool pool(kLargeCap, 0);
  pool.enable_large_frames();
  pool.reserve(3);
  EXPECT_EQ(pool.allocate_for(0), 0u);  // region 0 -> slot 0
  // A squatter (unbound region, both slots bound after region 1 arrives)
  // can sit on a bound slot's interior frame.
  EXPECT_EQ(pool.allocate_for(kLargePages + 0), kLargePages + 0);  // region 1
  const FrameId squat = pool.allocate_for(2 * kLargePages + 1);
  EXPECT_EQ(squat, 1u);  // inside slot 0
  // Region 0's page at offset 1 finds its preferred frame taken: fallback.
  pool.reserve(1);
  const FrameId f = pool.allocate_for(1);
  EXPECT_NE(f, 1u);
  EXPECT_FALSE(pool.frame_free(f));
}

TEST(FramePoolLarge, ChurnReclaimsFullyFreedBoundSlot) {
  FramePool pool(kLargeCap, 0);
  pool.enable_large_frames();
  pool.reserve(2);
  EXPECT_EQ(pool.allocate_for(0), 0u);                     // region 0 -> slot 0
  EXPECT_EQ(pool.allocate_for(kLargePages), kLargePages);  // region 1 -> slot 1
  // Region 0 is entirely evicted: its slot's frames are all free again, but
  // the binding lingers (lazy) until a newcomer needs a slot.
  pool.release(0);
  pool.reserve(1);
  EXPECT_EQ(pool.allocate_for(2 * kLargePages + 0), 0u);  // reclaims slot 0
  // Region 0 returning now finds no slot (slot 1 is occupied): fallback.
  pool.reserve(1);
  const FrameId f = pool.allocate_for(0);
  EXPECT_NE(f, 0u);
  EXPECT_EQ(pool.free_frames(), kLargeCap - 3);
}

TEST(FramePoolLarge, AccountingStaysExactThroughChurn) {
  FramePool pool(kLargeCap, 0);
  pool.enable_large_frames();
  // Interleave allocations from three regions (only two slots), release in
  // a mixed order, and re-allocate: the free count and the per-frame bitmap
  // must agree at every step.
  std::vector<FrameId> live;
  for (u64 round = 0; round < 4; ++round) {
    for (u64 r = 0; r < 3; ++r) {
      for (u32 i = 0; i < 8; ++i) {
        pool.reserve(1);
        live.push_back(pool.allocate_for(r * kLargePages + i + 8 * round));
      }
    }
    EXPECT_EQ(pool.free_frames(), kLargeCap - live.size());
    // Release every other live frame.
    std::vector<FrameId> kept;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (i % 2 == 0) pool.release(live[i]);
      else kept.push_back(live[i]);
    }
    live = std::move(kept);
    EXPECT_EQ(pool.free_frames(), kLargeCap - live.size());
    for (const FrameId f : live) EXPECT_FALSE(pool.frame_free(f));
  }
  // Drain: everything released, the pool is whole again.
  for (const FrameId f : live) pool.release(f);
  EXPECT_EQ(pool.free_frames(), kLargeCap);
  for (FrameId f = 0; f < kLargeCap; ++f) EXPECT_TRUE(pool.frame_free(f));
}

// The tail of a capacity that is not slot-aligned is plain 4 KB territory:
// allocations and releases there must not touch slot accounting.
TEST(FramePoolLarge, UnalignedCapacityTailStaysSmall) {
  FramePool pool(kLargePages + 3 * kChunkPages, 0);
  pool.enable_large_frames();
  EXPECT_EQ(pool.large_slots(), 1u);
  pool.reserve(kLargePages);  // region 0 fills slot 0 completely
  for (u32 i = 0; i < kLargePages; ++i)
    EXPECT_EQ(pool.allocate_for(i), FrameId{i});
  // The next region can only land on tail frames past the last slot.
  pool.reserve(3 * kChunkPages);
  for (u32 i = 0; i < 3 * kChunkPages; ++i) {
    const FrameId f = pool.allocate_for(kLargePages + i);
    EXPECT_GE(f, kLargePages);
  }
  EXPECT_EQ(pool.free_frames(), 0u);
  // Releasing tail frames round-trips cleanly (no slot underflow).
  pool.release(kLargePages + 1);
  pool.reserve(1);
  EXPECT_EQ(pool.allocate_for(kLargePages + 1), kLargePages + 1);
}

}  // namespace
}  // namespace uvmsim
