// Batched fault service (ISSUE tentpole): the FaultBatcher drains up to
// `fault_batch` pending faults per driver wakeup and the scheduler merges
// their plans into one migration operation. Window 1 must reproduce the
// classic one-fault-per-wakeup driver exactly; wider windows amortise
// migration ops across the backlog.
#include <gtest/gtest.h>

#include <vector>

#include "obs/trace_sink.hpp"
#include "policy/lru.hpp"
#include "prefetch/prefetcher.hpp"
#include "uvm/driver.hpp"
#include "uvm/fault_batcher.hpp"

namespace uvmsim {
namespace {

struct FaultBatchFixture : ::testing::Test {
  EventQueue eq;
  SystemConfig sys;
  PolicyConfig pol;

  std::unique_ptr<UvmDriver> make_driver(u64 footprint_pages, u64 capacity_pages,
                                         bool prefetch = false) {
    pol.eviction = EvictionKind::kLru;
    pol.prefetch = prefetch ? PrefetchKind::kLocality : PrefetchKind::kNone;
    pol.pre_evict_watermark_chunks = 0;  // exact demand-eviction accounting
    auto d = std::make_unique<UvmDriver>(eq, sys, pol, footprint_pages, capacity_pages);
    d->set_policy(std::make_unique<LruPolicy>(d->chain()));
    if (prefetch)
      d->set_prefetcher(std::make_unique<LocalityPrefetcher>());
    else
      d->set_prefetcher(std::make_unique<NoPrefetcher>());
    return d;
  }
};

// One narrow slot, a window of four: the four faults that pile up behind
// the first one are drained by a single driver operation.
TEST_F(FaultBatchFixture, BacklogDrainsInOneOperation) {
  pol.driver_concurrency = 1;
  pol.fault_batch = 4;
  auto d = make_driver(16 * 16, 16 * 16);
  int wakes = 0;
  for (ChunkId c = 0; c < 5; ++c)
    d->fault(first_page_of_chunk(c), [&] { ++wakes; });
  eq.run();
  EXPECT_EQ(wakes, 5);
  EXPECT_EQ(d->stats().page_faults, 5u);
  // Op 1 services fault 0 alone (the queue was empty when it arrived);
  // op 2 services the whole backlog of four.
  EXPECT_EQ(d->stats().migration_ops, 2u);
  EXPECT_EQ(d->stats().pages_migrated_in, 5u);
  for (ChunkId c = 0; c < 5; ++c)
    EXPECT_TRUE(d->page_resident(first_page_of_chunk(c)));
}

// The same five faults with the classic window take five operations.
TEST_F(FaultBatchFixture, WindowOneKeepsOneOpPerFault) {
  pol.driver_concurrency = 1;
  pol.fault_batch = 1;
  auto d = make_driver(16 * 16, 16 * 16);
  int wakes = 0;
  for (ChunkId c = 0; c < 5; ++c)
    d->fault(first_page_of_chunk(c), [&] { ++wakes; });
  eq.run();
  EXPECT_EQ(wakes, 5);
  EXPECT_EQ(d->stats().migration_ops, 5u);
  EXPECT_EQ(d->stats().pages_migrated_in, 5u);
}

// Two batched faults in the same chunk: the second lead's plan is fully
// covered by the first lead's prefetch, so the batch merges into one
// deduplicated plan and the absorbed fault's waiter rides the migration.
TEST_F(FaultBatchFixture, OverlappingPlansMergeAndDedup) {
  pol.driver_concurrency = 1;
  pol.fault_batch = 2;
  auto d = make_driver(16 * 16, 16 * 16, /*prefetch=*/true);
  int wakes = 0;
  d->fault(0, [&] { ++wakes; });   // op 1: chunk 0
  d->fault(17, [&] { ++wakes; });  // backlog; chunk 1
  d->fault(18, [&] { ++wakes; });  // backlog; absorbed by fault 17's plan
  eq.run();
  EXPECT_EQ(wakes, 3);
  EXPECT_EQ(d->stats().page_faults, 3u);
  EXPECT_EQ(d->stats().migration_ops, 2u);
  EXPECT_EQ(d->stats().pages_migrated_in, 32u);  // two whole chunks, no dupes
  EXPECT_EQ(d->stats().pages_demanded, 3u);
  EXPECT_EQ(d->stats().pages_prefetched, 29u);
}

// The batch events are emitted only on the batched path (window > 1), and
// carry the batch fan-in so traces show the amortisation directly.
TEST_F(FaultBatchFixture, BatchEventsCarryFanIn) {
  pol.driver_concurrency = 1;
  pol.fault_batch = 4;
  auto d = make_driver(16 * 16, 16 * 16);
  FlightRecorder rec(eq);
  RingSink ring(4096);
  rec.add_sink(&ring);
  d->set_recorder(&rec);
  for (ChunkId c = 0; c < 5; ++c) d->fault(first_page_of_chunk(c), [] {});
  eq.run();
  bool formed4 = false, serviced4 = false;
  for (const TraceEvent& e : ring.events()) {
    if (e.type == EventType::kFaultBatchFormed && e.b == 4) formed4 = true;
    if (e.type == EventType::kBatchServiced && e.b == 4) serviced4 = true;
  }
  EXPECT_TRUE(formed4);
  EXPECT_TRUE(serviced4);
}

// Per-fault service latency: a lone fault waits the fault latency plus its
// page's H2D transfer; coalesced waiters ride the same entry and are not
// double-counted.
TEST_F(FaultBatchFixture, FaultWaitCyclesChargedPerDistinctFault) {
  auto d = make_driver(256, 256);
  d->fault(3, [] {});
  d->fault(3, [] {});  // coalesces into the same pending entry
  eq.run();
  EXPECT_EQ(d->stats().fault_wait_cycles,
            sys.fault_latency_cycles() + sys.pcie_page_cycles());
}

// Starved admission with free frames left: the batch is trimmed from the
// back, trimmed leads go back to the backlog front, their pins are undone,
// and they are serviced by the next wakeup. Setup: two chunks resident at
// 14+15 of 31 frames, so the two-fault batch {15, 31} pins both chunks
// (its own plans) and finds only one free frame -> fault 31 is trimmed.
TEST_F(FaultBatchFixture, TrimmedLeadIsRequeuedAndServicedNext) {
  pol.driver_concurrency = 1;
  pol.fault_batch = 2;
  auto d = make_driver(16 * 16, 31);
  int wakes = 0;
  for (PageId p = 0; p < 14; ++p) {  // chunk 0: pages 0..13
    d->fault(p, [&] { ++wakes; });
    eq.run();
  }
  for (PageId p = 16; p < 31; ++p) {  // chunk 1: pages 16..30
    d->fault(p, [&] { ++wakes; });
    eq.run();
  }
  ASSERT_EQ(d->free_frames(), 2u);
  d->fault(14, [&] { ++wakes; });  // admitted alone, free -> 1, pins chunk 0
  d->fault(15, [&] { ++wakes; });  // backlog
  d->fault(31, [&] { ++wakes; });  // backlog; trimmed from the {15, 31} batch
  eq.run();
  EXPECT_EQ(wakes, 32);
  EXPECT_EQ(d->stats().page_faults, 32u);
  EXPECT_TRUE(d->page_resident(31));
  // Making room for the requeued fault 31 evicted the LRU chunk 0 once.
  EXPECT_EQ(d->stats().chunks_evicted, 1u);
  EXPECT_EQ(d->stats().pages_evicted, 16u);
  EXPECT_FALSE(d->page_resident(0));
  // Pins balance: nothing left pinned once the queue drains.
  for (const ChunkEntry& e : d->chain()) EXPECT_EQ(e.pin_count, 0u);
}

// FaultBatcher unit coverage: absorbed entries are skipped at batch
// formation, and a requeued lead is drained first.
TEST(FaultBatcher, SkipsAbsorbedEntriesAndHonoursRequeue) {
  FaultBatcher b(2);
  b.raise(10, [] {}, 0);
  b.raise(11, [] {}, 0);
  b.raise(12, [] {}, 0);
  const PendingFault absorbed = b.extract(11);  // swept into another plan
  EXPECT_TRUE(absorbed.faulted);
  EXPECT_EQ(absorbed.waiters.size(), 1u);
  EXPECT_FALSE(b.pending(11));
  // Window 2, one entry absorbed: the batch skips it and drains 10 and 12.
  EXPECT_EQ(b.take_batch(), (std::vector<PageId>{10, 12}));
  // 12 was trimmed back out of the admitted plan: it drains ahead of newer
  // faults at the next wakeup.
  b.requeue_front(12);
  b.raise(13, [] {}, 1);
  EXPECT_EQ(b.take_batch(), (std::vector<PageId>{12, 13}));
  EXPECT_TRUE(b.take_batch().empty());
}

TEST(FaultBatcher, CoalesceOnlyAttachesToPendingFaults) {
  FaultBatcher b(1);
  EXPECT_FALSE(b.coalesce(5, [] {}));
  b.raise(5, [] {}, 3);
  EXPECT_TRUE(b.coalesce(5, [] {}));
  const PendingFault f = b.extract(5);
  EXPECT_EQ(f.waiters.size(), 2u);
  EXPECT_EQ(f.raised_at, 3u);
}

}  // namespace
}  // namespace uvmsim
