// UvmDriver: full fault lifecycle, coalescing, eviction accounting, frame
// conservation, prefetch gating, and TLB shootdown.
#include "uvm/driver.hpp"

#include <gtest/gtest.h>

#include "policy/lru.hpp"
#include "prefetch/prefetcher.hpp"

namespace uvmsim {
namespace {

struct DriverFixture : ::testing::Test {
  EventQueue eq;
  SystemConfig sys;
  PolicyConfig pol;

  std::unique_ptr<UvmDriver> make_driver(u64 footprint_pages, u64 capacity_pages,
                                         bool prefetch = true) {
    pol.eviction = EvictionKind::kLru;
    pol.prefetch = prefetch ? PrefetchKind::kLocality : PrefetchKind::kNone;
    pol.pre_evict_watermark_chunks = 0;  // exact demand-eviction accounting
    auto d = std::make_unique<UvmDriver>(eq, sys, pol, footprint_pages, capacity_pages);
    d->set_policy(std::make_unique<LruPolicy>(d->chain()));
    if (prefetch)
      d->set_prefetcher(std::make_unique<LocalityPrefetcher>());
    else
      d->set_prefetcher(std::make_unique<NoPrefetcher>());
    return d;
  }
};

TEST_F(DriverFixture, FaultMigratesWholeChunk) {
  auto d = make_driver(256, 128);
  bool woke = false;
  d->fault(5, [&] { woke = true; });
  eq.run();
  EXPECT_TRUE(woke);
  for (PageId p = 0; p < 16; ++p) EXPECT_TRUE(d->page_resident(p));
  EXPECT_FALSE(d->page_resident(16));
  EXPECT_EQ(d->stats().page_faults, 1u);
  EXPECT_EQ(d->stats().pages_migrated_in, 16u);
  EXPECT_EQ(d->stats().pages_demanded, 1u);
  EXPECT_EQ(d->stats().pages_prefetched, 15u);
}

TEST_F(DriverFixture, FaultServiceTimeIsCharged) {
  auto d = make_driver(256, 128);
  Cycle woke_at = 0;
  d->fault(0, [&] { woke_at = eq.now(); });
  eq.run();
  // 20 us service + 16 pages over the H2D link.
  const Cycle expected = sys.fault_latency_cycles() + 16 * sys.pcie_page_cycles();
  EXPECT_EQ(woke_at, expected);
}

TEST_F(DriverFixture, FaultsToInflightPageCoalesce) {
  auto d = make_driver(256, 128);
  int wakes = 0;
  d->fault(3, [&] { ++wakes; });
  d->fault(3, [&] { ++wakes; });
  d->fault(7, [&] { ++wakes; });  // same chunk, already planned -> coalesces
  eq.run();
  EXPECT_EQ(wakes, 3);
  EXPECT_EQ(d->stats().page_faults, 1u);
  EXPECT_EQ(d->stats().faults_coalesced, 2u);
  EXPECT_EQ(d->stats().pages_migrated_in, 16u);
  // Both faulted pages count as demanded.
  EXPECT_EQ(d->stats().pages_demanded, 2u);
}

TEST_F(DriverFixture, FaultOnResidentPageWakesImmediately) {
  auto d = make_driver(256, 128);
  d->fault(0, [] {});
  eq.run();
  bool woke = false;
  d->fault(0, [&] { woke = true; });
  EXPECT_TRUE(woke);  // synchronous wake, no new fault
  EXPECT_EQ(d->stats().page_faults, 1u);
}

TEST_F(DriverFixture, EvictsLruChunkWhenFull) {
  auto d = make_driver(16 * 16, 4 * 16);  // 16 chunks footprint, 4 chunks capacity
  for (ChunkId c = 0; c < 4; ++c) {
    d->fault(first_page_of_chunk(c), [] {});
    eq.run();
  }
  EXPECT_EQ(d->free_frames(), 0u);
  EXPECT_TRUE(d->memory_full());
  d->fault(first_page_of_chunk(4), [] {});
  eq.run();
  EXPECT_EQ(d->stats().chunks_evicted, 1u);
  EXPECT_EQ(d->stats().pages_evicted, 16u);
  EXPECT_FALSE(d->page_resident(0));          // chunk 0 was the LRU victim
  EXPECT_TRUE(d->page_resident(4 * 16));
}

TEST_F(DriverFixture, FrameAccountingConserved) {
  auto d = make_driver(32 * 16, 8 * 16);
  for (ChunkId c = 0; c < 20; ++c) {
    d->fault(first_page_of_chunk(c) + (c % 16), [] {});
    eq.run();
  }
  const auto& st = d->stats();
  EXPECT_EQ(st.pages_migrated_in - st.pages_evicted, d->page_table().mapped_pages());
  EXPECT_LE(d->page_table().mapped_pages(), d->capacity_pages());
  EXPECT_EQ(d->free_frames() + d->page_table().mapped_pages(), d->capacity_pages());
}

TEST_F(DriverFixture, CapacityIsNeverExceededMidRun) {
  auto d = make_driver(64 * 16, 6 * 16);
  for (ChunkId c = 0; c < 30; ++c) d->fault(first_page_of_chunk(c), [] {});
  while (eq.step()) {
    ASSERT_LE(d->page_table().mapped_pages(), d->capacity_pages());
  }
}

TEST_F(DriverFixture, PrefetchGatingWhenMemoryFull) {
  pol.prefetch_when_full = false;
  auto d = make_driver(16 * 16, 4 * 16);
  for (ChunkId c = 0; c < 4; ++c) {
    d->fault(first_page_of_chunk(c), [] {});
    eq.run();
  }
  ASSERT_TRUE(d->memory_full());
  d->fault(first_page_of_chunk(5), [] {});
  eq.run();
  // Only the faulted page moved: no prefetch once memory is exhausted.
  EXPECT_EQ(d->stats().pages_migrated_in, 4 * 16 + 1);
}

TEST_F(DriverFixture, ShootdownFiresPerEvictedPage) {
  auto d = make_driver(16 * 16, 4 * 16);
  u64 shootdowns = 0;
  d->set_shootdown_handler([&](PageId, FrameId) { ++shootdowns; });
  for (ChunkId c = 0; c < 5; ++c) {
    d->fault(first_page_of_chunk(c), [] {});
    eq.run();
  }
  EXPECT_EQ(shootdowns, 16u);  // one chunk evicted
}

TEST_F(DriverFixture, NoteTouchUpdatesChainMetadata) {
  auto d = make_driver(256, 128);
  d->fault(0, [] {});
  eq.run();
  d->note_touch(3);
  const ChunkEntry& e = d->chain().entry(0);
  EXPECT_TRUE(e.touched.test(3));
  EXPECT_TRUE(e.touched.test(0));  // the original demand fault
  EXPECT_EQ(e.untouch_level(), 14u);
}

TEST_F(DriverFixture, LruReordersChainOnTouch) {
  auto d = make_driver(256, 128);
  d->fault(first_page_of_chunk(0), [] {});
  eq.run();
  d->fault(first_page_of_chunk(1), [] {});
  eq.run();
  EXPECT_EQ(d->chain().begin()->id, 0u);  // 0 is LRU
  d->note_touch(0);                       // touch chunk 0 -> MRU
  EXPECT_EQ(d->chain().begin()->id, 1u);
}

TEST_F(DriverFixture, DemandOnlyMigratesSinglePages) {
  auto d = make_driver(256, 128, /*prefetch=*/false);
  d->fault(5, [] {});
  eq.run();
  EXPECT_EQ(d->stats().pages_migrated_in, 1u);
  EXPECT_TRUE(d->page_resident(5));
  EXPECT_FALSE(d->page_resident(4));
}

TEST_F(DriverFixture, ResidencyViewIncludesInflight) {
  auto d = make_driver(256, 128);
  d->fault(0, [] {});
  // Before the migration completes, the view reports the planned pages as
  // resident so concurrent prefetch plans skip them.
  EXPECT_TRUE(d->is_resident(0));
  EXPECT_TRUE(d->is_resident(15));
  EXPECT_FALSE(d->page_resident(0));
  eq.run();
  EXPECT_TRUE(d->page_resident(0));
}

TEST_F(DriverFixture, PreEvictionKeepsWatermarkFree) {
  PolicyConfig p2;
  p2.eviction = EvictionKind::kLru;
  p2.prefetch = PrefetchKind::kLocality;
  p2.pre_evict_watermark_chunks = 2;
  auto d2 = std::make_unique<UvmDriver>(eq, sys, p2, 32 * 16, 4 * 16);
  d2->set_policy(std::make_unique<LruPolicy>(d2->chain()));
  d2->set_prefetcher(std::make_unique<LocalityPrefetcher>());
  for (ChunkId c = 0; c < 6; ++c) {
    d2->fault(first_page_of_chunk(c), [] {});
    eq.run();
  }
  // After every completed migration at least 2 chunks of frames are free,
  // and those evictions were pre-evictions, not demand evictions.
  EXPECT_GE(d2->free_frames(), 2u * kChunkPages);
  EXPECT_GT(d2->stats().pre_evictions, 0u);
  EXPECT_EQ(d2->stats().demand_evictions, 0u);
}

TEST_F(DriverFixture, DemandEvictionLengthensFaultService) {
  // watermark 0: the 5th chunk fault must evict synchronously and pay for it.
  auto d = make_driver(16 * 16, 4 * 16);
  for (ChunkId c = 0; c < 4; ++c) {
    d->fault(first_page_of_chunk(c), [] {});
    eq.run();
  }
  const Cycle before = eq.now();
  Cycle woke_at = 0;
  d->fault(first_page_of_chunk(5), [&] { woke_at = eq.now(); });
  eq.run();
  EXPECT_EQ(d->stats().demand_evictions, 1u);
  const Cycle expected = before + sys.fault_latency_cycles() +
                         sys.evict_service_cycles() + 16 * sys.pcie_page_cycles();
  EXPECT_EQ(woke_at, expected);
}

TEST_F(DriverFixture, H2DAndD2HTrafficAccounted) {
  auto d = make_driver(16 * 16, 4 * 16);
  for (ChunkId c = 0; c < 6; ++c) {
    d->fault(first_page_of_chunk(c), [] {});
    eq.run();
  }
  EXPECT_EQ(d->h2d().units_moved(), 6u * 16u);
  EXPECT_EQ(d->d2h().units_moved(), 2u * 16u);  // two chunks written back
}

}  // namespace
}  // namespace uvmsim
