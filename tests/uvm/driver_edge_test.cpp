// Driver edge cases: admission backlog, fault absorption, the all-pinned
// retry path, gating interaction with pre-eviction, and tiny capacities.
#include <gtest/gtest.h>

#include "policy/lru.hpp"
#include "prefetch/prefetcher.hpp"
#include "uvm/driver.hpp"

namespace uvmsim {
namespace {

struct DriverEdgeFixture : ::testing::Test {
  EventQueue eq;
  SystemConfig sys;
  PolicyConfig pol;

  std::unique_ptr<UvmDriver> make_driver(u64 footprint, u64 capacity) {
    auto d = std::make_unique<UvmDriver>(eq, sys, pol, footprint, capacity);
    d->set_policy(std::make_unique<LruPolicy>(d->chain()));
    d->set_prefetcher(std::make_unique<LocalityPrefetcher>());
    return d;
  }
};

TEST_F(DriverEdgeFixture, BacklogBeyondAdmissionLimitDrains) {
  auto d = make_driver(64 * 16, 64 * 16);
  int wakes = 0;
  // 40 distinct chunks faulted at once: far more than the 8 driver slots.
  for (ChunkId c = 0; c < 40; ++c)
    d->fault(first_page_of_chunk(c), [&] { ++wakes; });
  eq.run();
  EXPECT_EQ(wakes, 40);
  EXPECT_EQ(d->stats().migration_ops, 40u);
  EXPECT_EQ(d->stats().pages_migrated_in, 40u * 16u);
}

TEST_F(DriverEdgeFixture, QueuedSiblingFaultsAreAbsorbedIntoOnePlan) {
  auto d = make_driver(64 * 16, 64 * 16);
  // Saturate the 8 admission slots with 8 distinct chunks...
  int wakes = 0;
  for (ChunkId c = 0; c < 8; ++c)
    d->fault(first_page_of_chunk(c), [&] { ++wakes; });
  // ...then raise 16 sibling faults for one further chunk. They queue, the
  // first admitted one plans the whole chunk, the rest must be absorbed.
  for (u32 i = 0; i < 16; ++i)
    d->fault(first_page_of_chunk(9) + i, [&] { ++wakes; });
  eq.run();
  EXPECT_EQ(wakes, 24);
  // 8 ops for the first chunks + exactly 1 op for chunk 9.
  EXPECT_EQ(d->stats().migration_ops, 9u);
  // All 16 sibling pages were demanded (each had a waiter).
  EXPECT_EQ(d->stats().pages_demanded, 8u + 16u);
}

TEST_F(DriverEdgeFixture, SingleChunkCapacitySurvivesConcurrentFaults) {
  // Capacity of ONE chunk and faults to many chunks: the all-pinned retry
  // path must make progress without deadlock or capacity violation.
  auto d = make_driver(8 * 16, 16);
  int wakes = 0;
  for (ChunkId c = 0; c < 8; ++c)
    d->fault(first_page_of_chunk(c), [&] { ++wakes; });
  eq.run();
  EXPECT_EQ(wakes, 8);
  EXPECT_LE(d->page_table().mapped_pages(), 16u);
  EXPECT_EQ(d->free_frames() + d->page_table().mapped_pages(), 16u);
}

TEST_F(DriverEdgeFixture, GatingStaysOffOncePressureBegan) {
  pol.prefetch_when_full = false;
  pol.pre_evict_watermark_chunks = 2;  // pre-eviction keeps headroom free
  auto d = make_driver(16 * 16, 4 * 16);
  for (ChunkId c = 0; c < 4; ++c) {
    d->fault(first_page_of_chunk(c), [] {});
    eq.run();
  }
  ASSERT_TRUE(d->memory_full());  // pressure began (evictions happened)
  const u64 before = d->stats().pages_migrated_in;
  d->fault(first_page_of_chunk(6), [] {});
  eq.run();
  // Even though pre-eviction freed frames, the gate stays closed: only the
  // faulted page moves.
  EXPECT_EQ(d->stats().pages_migrated_in, before + 1);
}

TEST_F(DriverEdgeFixture, PreEvictionCountsSeparately) {
  pol.pre_evict_watermark_chunks = 1;
  auto d = make_driver(16 * 16, 4 * 16);
  for (ChunkId c = 0; c < 8; ++c) {
    d->fault(first_page_of_chunk(c), [] {});
    eq.run();
  }
  const auto& st = d->stats();
  EXPECT_GT(st.pre_evictions, 0u);
  EXPECT_EQ(st.demand_evictions, 0u);  // watermark always kept one chunk free
  EXPECT_EQ(st.pre_evictions + st.demand_evictions, st.chunks_evicted);
}

TEST_F(DriverEdgeFixture, InterleavedFaultAndTouchKeepMetadataConsistent) {
  auto d = make_driver(256, 256);
  d->fault(0, [] {});
  eq.run();
  for (u32 i = 0; i < 16; ++i) d->note_touch(i);
  const ChunkEntry& e = d->chain().entry(0);
  EXPECT_TRUE(e.touched.full());
  EXPECT_EQ(e.untouch_level(), 0u);
  // 16 migrated pages + 15 new touches (page 0's touch bit was already set
  // when its demand fault completed, so re-touching it does not count).
  EXPECT_EQ(e.hpe_counter, 16u + 15u);
}

}  // namespace
}  // namespace uvmsim
