// LargeFrameManager: Mosaic-style lazy coalescing and splintering of 2 MB
// regions (docs/memory.md). These tests pin the candidacy walk (every way a
// region can fail to qualify), the promote/demote metadata flips, the
// shootdown fan-out, and the deferred deduplicated scan scheduling.
#include "uvm/large_frames.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/config.hpp"
#include "sim/event_queue.hpp"
#include "tlb/page_table.hpp"
#include "uvm/chain_set.hpp"

namespace uvmsim {
namespace {

class LargeFramesTest : public ::testing::Test {
 protected:
  LargeFramesTest() {
    pt_.reserve(4 * kLargePages);
    chains_.reserve_chunks(4 * kLargeChunks);
  }

  /// Make region `l` a perfect coalesce candidate: all 512 pages mapped
  /// contiguously from `base`, all 32 chunks fully resident + demand-touched.
  void populate(LargeId l, FrameId base) {
    const PageId p0 = first_page_of_large(l);
    for (u32 i = 0; i < kLargePages; ++i) pt_.map(p0 + i, base + i);
    const ChunkId c0 = first_chunk_of_large(l);
    for (u32 k = 0; k < kLargeChunks; ++k) {
      ChunkEntry& e = chains_.chain_of_chunk(c0 + k).insert(c0 + k);
      e.resident = TouchBits::all();
      e.touched = TouchBits::all();
    }
  }

  EventQueue eq_;
  SystemConfig sys_;
  PageTable pt_;
  ChainSet chains_{64};
  DriverStats stats_;
  LargeFrameManager lfm_{eq_, sys_, pt_, chains_, stats_};
};

TEST_F(LargeFramesTest, CoalescesQualifyingRegion) {
  populate(0, 0);
  EXPECT_FALSE(lfm_.coalesced(0));

  EXPECT_TRUE(lfm_.try_coalesce(0));

  EXPECT_TRUE(lfm_.coalesced(0));
  EXPECT_TRUE(pt_.large_mapped(0));
  EXPECT_EQ(stats_.coalesces, 1u);
  // Promotion is a pure metadata flip: every per-page translation survives.
  for (u32 i = 0; i < kLargePages; ++i)
    EXPECT_EQ(pt_.frame_of(first_page_of_large(0) + i), FrameId{i});
  // Member chunks are flagged so eviction treats the region as one victim.
  for (u32 k = 0; k < kLargeChunks; ++k)
    EXPECT_TRUE(chains_.find(first_chunk_of_large(0) + k)->in_large);
}

TEST_F(LargeFramesTest, RejectsMisalignedFrameBase) {
  // Contiguous run, but starting at frame 16: not a 512-aligned slot.
  populate(0, kChunkPages);
  EXPECT_FALSE(lfm_.try_coalesce(0));
  EXPECT_EQ(stats_.coalesces, 0u);
}

TEST_F(LargeFramesTest, RejectsNonContiguousFrames) {
  populate(0, 0);
  // One page scattered by a fallback allocation breaks the run.
  pt_.unmap(7);
  pt_.map(7, 4 * kLargePages + 3);
  EXPECT_FALSE(lfm_.try_coalesce(0));
}

TEST_F(LargeFramesTest, RejectsPartiallyTouchedRegion) {
  populate(0, 0);
  ChunkEntry* e = chains_.find(first_chunk_of_large(0) + 5);
  e->touched = TouchBits::none();
  EXPECT_FALSE(lfm_.try_coalesce(0));

  // Once the last pages are demand-touched, the same region qualifies.
  e->touched = TouchBits::all();
  EXPECT_TRUE(lfm_.try_coalesce(0));
}

TEST_F(LargeFramesTest, RejectsPinnedAndSpilledChunks) {
  populate(0, 0);
  ChunkEntry* e = chains_.find(first_chunk_of_large(0));
  e->pin_count = 1;  // in-flight DMA holds the chunk
  EXPECT_FALSE(lfm_.try_coalesce(0));
  e->pin_count = 0;

  e->spilled = true;  // spill-adopted chunks live on a peer's frames
  EXPECT_FALSE(lfm_.try_coalesce(0));
  e->spilled = false;

  EXPECT_TRUE(lfm_.try_coalesce(0));
}

TEST_F(LargeFramesTest, RejectsAlreadyCoalescedRegion) {
  populate(0, 0);
  EXPECT_TRUE(lfm_.try_coalesce(0));
  EXPECT_FALSE(lfm_.try_coalesce(0));
  EXPECT_EQ(stats_.coalesces, 1u);
}

TEST_F(LargeFramesTest, RejectsRegionWithNonResidentChunk) {
  populate(0, 0);
  // A chunk the driver has never migrated (no chain entry at all).
  populate(1, kLargePages);
  ChunkEntry* e = chains_.find(first_chunk_of_large(1) + 9);
  e->resident = TouchBits::none();
  EXPECT_FALSE(lfm_.try_coalesce(1));
  // Region 0 is unaffected by its neighbour's state.
  EXPECT_TRUE(lfm_.try_coalesce(0));
}

TEST_F(LargeFramesTest, SplinterRestoresPerPageStateAndFiresShootdown) {
  populate(0, 0);
  std::vector<LargeId> shot;
  lfm_.add_shootdown_handler([&shot](LargeId l) { shot.push_back(l); });
  ASSERT_TRUE(lfm_.try_coalesce(0));
  EXPECT_TRUE(shot.empty());  // promotion never invalidates anything

  lfm_.splinter(0, SplinterReason::kEvictionPressure);

  EXPECT_FALSE(lfm_.coalesced(0));
  EXPECT_FALSE(pt_.large_mapped(0));
  EXPECT_EQ(stats_.splinters, 1u);
  EXPECT_EQ(shot, std::vector<LargeId>{0});
  // Frames stay put: per-page translations are valid again as small PTEs.
  for (u32 i = 0; i < kLargePages; ++i)
    EXPECT_EQ(pt_.frame_of(first_page_of_large(0) + i), FrameId{i});
  for (u32 k = 0; k < kLargeChunks; ++k)
    EXPECT_FALSE(chains_.find(first_chunk_of_large(0) + k)->in_large);

  // The splintered region may re-qualify later (lazy re-coalescing).
  EXPECT_TRUE(lfm_.try_coalesce(0));
  EXPECT_EQ(stats_.coalesces, 2u);
}

TEST_F(LargeFramesTest, ShootdownLargeFansOutWithoutDemoting) {
  populate(0, 0);
  int fired = 0;
  lfm_.add_shootdown_handler([&fired](LargeId) { ++fired; });
  lfm_.add_shootdown_handler([&fired](LargeId) { ++fired; });
  ASSERT_TRUE(lfm_.try_coalesce(0));

  lfm_.shootdown_large(0);  // whole-frame eviction path: no demote here

  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(pt_.large_mapped(0));  // the eviction engine unmaps, not us
}

TEST_F(LargeFramesTest, ScheduledScansAreDedupedAndDeferred) {
  populate(0, 0);
  lfm_.schedule_scan(0);
  lfm_.schedule_scan(0);  // duplicate while a scan is pending: no-op
  EXPECT_EQ(lfm_.pending_scans(), 1u);
  EXPECT_FALSE(lfm_.coalesced(0));  // nothing happens at schedule time

  while (eq_.step()) {
  }

  EXPECT_GE(eq_.now(), sys_.coalesce_delay_cycles());
  EXPECT_TRUE(lfm_.coalesced(0));
  EXPECT_EQ(lfm_.pending_scans(), 0u);
  EXPECT_EQ(stats_.coalesces, 1u);

  // Rescanning a now-coalesced region is allowed and simply finds no work.
  lfm_.schedule_scan(0);
  while (eq_.step()) {
  }
  EXPECT_EQ(stats_.coalesces, 1u);
}

// Tenant namespaces are 2 MB aligned (TenantTable::kNamespaceAlignPages ==
// kLargePages), so a large region's 32 chunks can never straddle tenants:
// coalescing one tenant's region never captures a neighbour's pages.
TEST_F(LargeFramesTest, TenantNamespacesNeverStraddleLargeRegions) {
  static_assert(TenantTable::kNamespaceAlignPages == kLargePages,
                "2 MB coalescing requires namespace bases on large-region "
                "boundaries");
  TenantTable table;
  table.add("A", 700);   // odd footprint: padded up to 1024
  table.add("B", 512);
  table.add("C", 100);
  for (LargeId l = 0; l * kLargePages < table.span_pages(); ++l) {
    const TenantId owner = table.tenant_of_chunk(first_chunk_of_large(l));
    for (u32 k = 0; k < kLargeChunks; ++k)
      EXPECT_EQ(table.tenant_of_chunk(first_chunk_of_large(l) + k), owner)
          << "region " << l << " chunk " << k;
  }
}

}  // namespace
}  // namespace uvmsim
