// GPU model: translation path, far-fault replay, shootdown wiring, and
// end-to-end completion on a tiny synthetic workload.
#include "gpu/gpu.hpp"

#include <gtest/gtest.h>

#include "policy/lru.hpp"
#include "prefetch/prefetcher.hpp"
#include "workloads/segment.hpp"

namespace uvmsim {
namespace {

/// Minimal workload: every warp walks `pages` sequentially, once.
class MiniWorkload final : public Workload {
 public:
  explicit MiniWorkload(u64 pages) : pages_(pages) {}
  [[nodiscard]] std::string name() const override { return "mini"; }
  [[nodiscard]] std::string abbr() const override { return "MINI"; }
  [[nodiscard]] u64 footprint_pages() const override { return pages_; }
  [[nodiscard]] PatternType pattern() const override { return PatternType::kStreaming; }
  [[nodiscard]] std::unique_ptr<AccessStream> make_stream(
      const WarpContext& ctx) const override {
    return std::make_unique<SegmentStream>(
        std::vector<Segment>{Segment::walk(0, pages_, ctx.global_index,
                                           ctx.total_warps, 1.0, 1, 10)},
        ctx.seed);
  }

 private:
  u64 pages_;
};

struct GpuFixture : ::testing::Test {
  EventQueue eq;
  SystemConfig sys;
  PolicyConfig pol;

  void small_gpu() {
    sys.num_sms = 2;
    sys.warps_per_sm = 2;
  }

  std::unique_ptr<UvmDriver> make_driver(u64 footprint, u64 capacity) {
    auto d = std::make_unique<UvmDriver>(eq, sys, pol, footprint, capacity);
    d->set_policy(std::make_unique<LruPolicy>(d->chain()));
    d->set_prefetcher(std::make_unique<LocalityPrefetcher>());
    return d;
  }
};

TEST_F(GpuFixture, RunsToCompletionWithAmpleMemory) {
  small_gpu();
  MiniWorkload wl(64);
  auto d = make_driver(64, 64);
  Gpu gpu(eq, sys, *d, wl, 1);
  gpu.launch();
  eq.run();
  EXPECT_TRUE(gpu.finished());
  EXPECT_GT(gpu.finish_cycle(), 0u);
  EXPECT_EQ(gpu.stats().accesses, 64u);  // 4 warps split one 64-page pass
}

TEST_F(GpuFixture, AllPagesFaultedInExactlyOnceWithoutOversubscription) {
  small_gpu();
  MiniWorkload wl(64);
  auto d = make_driver(64, 64);
  Gpu gpu(eq, sys, *d, wl, 1);
  gpu.launch();
  eq.run();
  // 64 pages / 16-page chunks: 4 migrations, no evictions.
  EXPECT_EQ(d->stats().pages_migrated_in, 64u);
  EXPECT_EQ(d->stats().pages_evicted, 0u);
  EXPECT_EQ(d->page_table().mapped_pages(), 64u);
}

TEST_F(GpuFixture, TlbsFilterRepeatedAccesses) {
  small_gpu();
  MiniWorkload wl(32);
  auto d = make_driver(32, 32);
  Gpu gpu(eq, sys, *d, wl, 1);
  gpu.launch();
  eq.run();
  const auto st = gpu.stats();
  EXPECT_EQ(st.l1_tlb_hits + st.l1_tlb_misses, st.accesses);
  // Every page is accessed once per warp slice, so L1 mostly misses here,
  // but the far-fault count must not exceed distinct pages.
  EXPECT_LE(st.far_faults, 32u);
}

TEST_F(GpuFixture, OversubscriptionForcesEvictionsAndStillCompletes) {
  small_gpu();
  MiniWorkload wl(128);
  auto d = make_driver(128, 64);  // 50% fits
  Gpu gpu(eq, sys, *d, wl, 1);
  gpu.launch();
  eq.run();
  EXPECT_TRUE(gpu.finished());
  EXPECT_GT(d->stats().pages_evicted, 0u);
  EXPECT_LE(d->page_table().mapped_pages(), 64u);
}

TEST_F(GpuFixture, ShootdownKeepsTlbsCoherent) {
  small_gpu();
  MiniWorkload wl(256);
  auto d = make_driver(256, 64);
  Gpu gpu(eq, sys, *d, wl, 1);
  gpu.launch();
  eq.run();
  EXPECT_TRUE(gpu.finished());
  // Coherence invariant: after the run every evicted page must be absent
  // from the page table; re-faulting works because TLBs were shot down.
  EXPECT_LE(d->page_table().mapped_pages(), 64u);
  EXPECT_EQ(d->stats().pages_migrated_in - d->stats().pages_evicted,
            d->page_table().mapped_pages());
}

TEST_F(GpuFixture, DeterministicAcrossRuns) {
  small_gpu();
  Cycle first = 0;
  for (int i = 0; i < 2; ++i) {
    EventQueue q;
    PolicyConfig p;
    auto d = std::make_unique<UvmDriver>(q, sys, p, 128, 64);
    d->set_policy(std::make_unique<LruPolicy>(d->chain()));
    d->set_prefetcher(std::make_unique<LocalityPrefetcher>());
    MiniWorkload wl(128);
    Gpu gpu(q, sys, *d, wl, 7);
    gpu.launch();
    q.run();
    if (i == 0)
      first = gpu.finish_cycle();
    else
      EXPECT_EQ(gpu.finish_cycle(), first);
  }
}

}  // namespace
}  // namespace uvmsim
