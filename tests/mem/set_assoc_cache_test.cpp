#include "mem/set_assoc_cache.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(SetAssocCache, MissThenHit) {
  SetAssocCache c(16, 4);
  EXPECT_FALSE(c.lookup(42));
  c.insert(42);
  EXPECT_TRUE(c.lookup(42));
}

TEST(SetAssocCache, LruEvictionWithinSet) {
  SetAssocCache c(4, 4);  // one set, 4 ways
  for (u64 t = 0; t < 4; ++t) c.insert(t);
  c.lookup(0);              // refresh 0; LRU is now 1
  EXPECT_EQ(c.insert(100), 1u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(1));
}

TEST(SetAssocCache, InsertExistingRefreshes) {
  SetAssocCache c(2, 2);
  c.insert(0);
  c.insert(2);                      // same set (2 % 1... both map to set 0)
  EXPECT_EQ(c.insert(0), SetAssocCache::kNoEviction);  // refresh, no eviction
  EXPECT_EQ(c.insert(4), 2u);       // 2 is now LRU
}

TEST(SetAssocCache, SetsIsolateTags) {
  SetAssocCache c(8, 2);  // 4 sets
  c.insert(0);
  c.insert(1);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(1));
  // Filling set 0 does not disturb set 1.
  c.insert(4);
  c.insert(8);
  EXPECT_TRUE(c.contains(1));
}

TEST(SetAssocCache, Invalidate) {
  SetAssocCache c(4, 2);
  c.insert(9);
  EXPECT_TRUE(c.invalidate(9));
  EXPECT_FALSE(c.contains(9));
  EXPECT_FALSE(c.invalidate(9));
}

TEST(SetAssocCache, InvalidateAll) {
  SetAssocCache c(8, 2);
  for (u64 t = 0; t < 8; ++t) c.insert(t);
  EXPECT_GT(c.occupancy(), 0u);
  c.invalidate_all();
  EXPECT_EQ(c.occupancy(), 0u);
}

TEST(SetAssocCache, FullyAssociativeMode) {
  SetAssocCache c(8, 0);  // ways=0 -> fully associative
  EXPECT_EQ(c.sets(), 1u);
  EXPECT_EQ(c.ways(), 8u);
  for (u64 t = 0; t < 8; ++t) c.insert(t * 1000);
  for (u64 t = 0; t < 8; ++t) EXPECT_TRUE(c.contains(t * 1000));
  c.insert(9999);
  EXPECT_EQ(c.occupancy(), 8u);
}

TEST(SetAssocCache, ContainsDoesNotRefresh) {
  SetAssocCache c(2, 2);
  c.insert(0);
  c.insert(1);
  (void)c.contains(0);     // probe must not refresh 0
  EXPECT_EQ(c.insert(5), 0u);  // 0 is still LRU
}

}  // namespace
}  // namespace uvmsim
