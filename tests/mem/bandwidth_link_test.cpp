#include "mem/bandwidth_link.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(BandwidthLink, SingleTransfer) {
  BandwidthLink link(100);
  EXPECT_EQ(link.reserve(0, 1), 100u);
  EXPECT_EQ(link.free_at(), 100u);
}

TEST(BandwidthLink, BackToBackTransfersQueue) {
  BandwidthLink link(100);
  EXPECT_EQ(link.reserve(0, 1), 100u);
  EXPECT_EQ(link.reserve(0, 1), 200u);  // queued behind the first
  EXPECT_EQ(link.reserve(50, 2), 400u);
}

TEST(BandwidthLink, IdleGapDoesNotAccumulateCredit) {
  BandwidthLink link(10);
  link.reserve(0, 1);               // busy [0,10)
  EXPECT_EQ(link.reserve(1000, 1), 1010u);  // starts at request time
}

TEST(BandwidthLink, UnitsAndBusyAccounting) {
  BandwidthLink link(10);
  link.reserve(0, 3);
  link.reserve(100, 2);
  EXPECT_EQ(link.units_moved(), 5u);
  EXPECT_EQ(link.busy_cycles(), 50u);
  EXPECT_DOUBLE_EQ(link.utilisation(100), 0.5);
}

TEST(BandwidthLink, ZeroUnitsIsFree) {
  BandwidthLink link(10);
  EXPECT_EQ(link.reserve(5, 0), 5u);
  EXPECT_EQ(link.units_moved(), 0u);
}

// --- Fixed-point accumulator (fractional cycles-per-unit) -------------------
// NVLink rates are non-integral (a 128B line at 25 GB/s and 1.4 GHz is 7.168
// cycles); the Q20 accumulator must carry the fraction instead of truncating
// it per reservation.

TEST(BandwidthLink, FractionalRateIsExactWhereTheProductIsWhole) {
  // 7.168 cy/line * 125 lines = 896.0 cycles exactly.
  BandwidthLink link(7.168);
  EXPECT_EQ(link.reserve(0, 125), 896u);
  EXPECT_EQ(link.busy_cycles(), 896u);
}

TEST(BandwidthLink, HalfCycleRateAlternates) {
  BandwidthLink link(0.5);
  EXPECT_EQ(link.reserve(0, 3), 1u);  // 1.5 -> 1 whole, 0.5 carried
  EXPECT_EQ(link.reserve(0, 1), 2u);  // carry completes the second cycle
  EXPECT_EQ(link.busy_cycles(), 2u);
}

TEST(BandwidthLink, PerUnitReservationsDoNotDriftFromBulk) {
  // Truncating per call would lose ~0.168 cycles per line; with the carry,
  // 1000 single-line reservations land exactly where one bulk one does.
  BandwidthLink bulk(7.168);
  BandwidthLink steps(7.168);
  const Cycle bulk_done = bulk.reserve(0, 1000);
  Cycle done = 0;
  for (int i = 0; i < 1000; ++i) done = steps.reserve(done, 1);
  EXPECT_EQ(done, bulk_done);
  EXPECT_EQ(steps.busy_cycles(), bulk.busy_cycles());
}

TEST(BandwidthLink, IntegralRatesStayExact) {
  // PCIe page cost (~358 cy/page) is integral; the fixed-point path must
  // reproduce the historical integer behaviour bit-for-bit.
  BandwidthLink link(358.0);
  EXPECT_EQ(link.reserve(0, 1), 358u);
  EXPECT_EQ(link.reserve(0, 2), 3u * 358u);
  EXPECT_EQ(link.cycles_per_unit(), 358u);
}

}  // namespace
}  // namespace uvmsim
