#include "mem/bandwidth_link.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(BandwidthLink, SingleTransfer) {
  BandwidthLink link(100);
  EXPECT_EQ(link.reserve(0, 1), 100u);
  EXPECT_EQ(link.free_at(), 100u);
}

TEST(BandwidthLink, BackToBackTransfersQueue) {
  BandwidthLink link(100);
  EXPECT_EQ(link.reserve(0, 1), 100u);
  EXPECT_EQ(link.reserve(0, 1), 200u);  // queued behind the first
  EXPECT_EQ(link.reserve(50, 2), 400u);
}

TEST(BandwidthLink, IdleGapDoesNotAccumulateCredit) {
  BandwidthLink link(10);
  link.reserve(0, 1);               // busy [0,10)
  EXPECT_EQ(link.reserve(1000, 1), 1010u);  // starts at request time
}

TEST(BandwidthLink, UnitsAndBusyAccounting) {
  BandwidthLink link(10);
  link.reserve(0, 3);
  link.reserve(100, 2);
  EXPECT_EQ(link.units_moved(), 5u);
  EXPECT_EQ(link.busy_cycles(), 50u);
  EXPECT_DOUBLE_EQ(link.utilisation(100), 0.5);
}

TEST(BandwidthLink, ZeroUnitsIsFree) {
  BandwidthLink link(10);
  EXPECT_EQ(link.reserve(5, 0), 5u);
  EXPECT_EQ(link.units_moved(), 0u);
}

}  // namespace
}  // namespace uvmsim
