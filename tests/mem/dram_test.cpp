#include "mem/dram.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(Dram, ConfiguredChannels) {
  SystemConfig cfg;
  Dram d(cfg);
  EXPECT_EQ(d.num_channels(), cfg.dram_channels);
}

TEST(Dram, AccessPaysAtLeastLatency) {
  SystemConfig cfg;
  Dram d(cfg);
  const Cycle done = d.access(1000, /*page=*/0);
  EXPECT_GE(done, 1000 + cfg.dram_latency);
}

TEST(Dram, DistinctChannelsDoNotContend) {
  SystemConfig cfg;
  Dram d(cfg);
  // Pages 0 and 1 land on different channels: both finish at the same time.
  const Cycle a = d.access(0, 0);
  const Cycle b = d.access(0, 1);
  EXPECT_EQ(a, b);
}

TEST(Dram, SameChannelQueues) {
  SystemConfig cfg;
  Dram d(cfg);
  const Cycle a = d.access(0, 0);
  const Cycle b = d.access(0, 0 + cfg.dram_channels);  // same channel
  EXPECT_GT(b, a);
}

TEST(Dram, CountsTransactions) {
  SystemConfig cfg;
  Dram d(cfg);
  for (int i = 0; i < 7; ++i) d.access(0, static_cast<PageId>(i));
  EXPECT_EQ(d.transactions(), 7u);
}

}  // namespace
}  // namespace uvmsim
