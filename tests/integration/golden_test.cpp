// Golden-range regression guard: the headline reproduction claims (Fig 8's
// per-type behaviour) must not silently drift as the simulator evolves.
// Ranges are intentionally loose — they encode the *shape* the paper
// establishes, not exact numbers.
#include <gtest/gtest.h>

#include "core/policy_factory.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "workloads/benchmarks.hpp"

namespace uvmsim {
namespace {

class GoldenFig8 : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<ExperimentSpec> specs;
    for (const auto& w : benchmark_abbrs())
      for (const auto& [label, pol] :
           {std::pair{std::string("baseline"), presets::baseline()},
            std::pair{std::string("CPPE"), presets::cppe()}}) {
        ExperimentSpec s;
        s.workload = w;
        s.label = label;
        s.policy = pol;
        s.oversub = 0.5;
        specs.push_back(std::move(s));
      }
    results_ = new std::vector<LabelledResult>(run_sweep(specs));
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static double speedup(const std::string& w) {
    const RunResult* base = nullptr;
    const RunResult* cppe = nullptr;
    for (const auto& r : *results_) {
      if (r.result.workload != w) continue;
      (r.spec.label == "CPPE" ? cppe : base) = &r.result;
    }
    return cppe->speedup_vs(*base);
  }

  static std::vector<LabelledResult>* results_;
};

std::vector<LabelledResult>* GoldenFig8::results_ = nullptr;

TEST_F(GoldenFig8, StreamingStaysNeutral) {
  for (const char* w : {"HOT", "LEU", "2DC", "3DC"}) {
    EXPECT_GT(speedup(w), 0.95) << w;
    EXPECT_LT(speedup(w), 1.30) << w;
  }
}

TEST_F(GoldenFig8, ThrashingWinsClearly) {
  for (const char* w : {"SRD", "HSD", "STN", "MRQ"}) EXPECT_GT(speedup(w), 1.15) << w;
}

TEST_F(GoldenFig8, StridedAppsWinBig) {
  EXPECT_GT(speedup("MVT"), 3.0);
  EXPECT_GT(speedup("BIC"), 3.0);
  EXPECT_GT(speedup("NW"), 1.6);
}

TEST_F(GoldenFig8, RegionMovingStaysClose) {
  for (const char* w : {"B+T", "HYB"}) {
    EXPECT_GT(speedup(w), 0.85) << w;
    EXPECT_LT(speedup(w), 1.15) << w;
  }
}

TEST_F(GoldenFig8, GeomeanInPaperBallpark) {
  std::vector<double> sps;
  for (const auto& w : benchmark_abbrs())
    if (w != "MVT" && w != "BIC") sps.push_back(speedup(w));  // paper's Fig 8 set
  const double gm = geomean(sps);
  EXPECT_GT(gm, 1.15);  // paper: 1.64x at 50%; shape floor
  EXPECT_LT(gm, 2.50);
}

}  // namespace
}  // namespace uvmsim
