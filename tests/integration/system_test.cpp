// End-to-end UvmSystem integration: runs real benchmarks through the full
// stack and checks cross-module invariants plus the paper's directional
// results (who wins on which pattern type).
#include <gtest/gtest.h>

#include "core/policy_factory.hpp"
#include "core/uvm_system.hpp"
#include "workloads/benchmarks.hpp"

namespace uvmsim {
namespace {

RunResult run(const std::string& abbr, const PolicyConfig& pol, double oversub) {
  const auto wl = make_benchmark(abbr);
  UvmSystem sys(SystemConfig{}, pol, *wl, oversub);
  return sys.run();
}

TEST(System, NoOversubscriptionMeansNoEvictions) {
  const RunResult r = run("HOT", presets::baseline(), 1.0);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.driver.pages_evicted, 0u);
  EXPECT_EQ(r.driver.chunks_evicted, 0u);
}

TEST(System, OversubscriptionForcesEvictions) {
  const RunResult r = run("HOT", presets::baseline(), 0.5);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.driver.pages_evicted, 0u);
}

TEST(System, RunsAreDeterministic) {
  const RunResult a = run("SRD", presets::cppe(), 0.5);
  const RunResult b = run("SRD", presets::cppe(), 0.5);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.driver.page_faults, b.driver.page_faults);
  EXPECT_EQ(a.driver.pages_evicted, b.driver.pages_evicted);
}

TEST(System, PageConservationInvariant) {
  for (const char* abbr : {"HOT", "NW", "SRD", "B+T"}) {
    const RunResult r = run(abbr, presets::cppe(), 0.5);
    EXPECT_TRUE(r.completed) << abbr;
    // in - out == finally-resident, which fits in the resident chunk chain
    // and never exceeds capacity.
    const u64 resident = r.driver.pages_migrated_in - r.driver.pages_evicted;
    EXPECT_LE(resident, r.capacity_pages) << abbr;
    EXPECT_LE(resident, r.final_chain_length * kChunkPages) << abbr;
    EXPECT_GT(r.final_chain_length, 0u) << abbr;
    EXPECT_EQ(r.driver.pages_demanded + r.driver.pages_prefetched,
              r.driver.pages_migrated_in)
        << abbr;
    EXPECT_EQ(r.h2d_pages, r.driver.pages_migrated_in) << abbr;
    EXPECT_EQ(r.d2h_pages, r.driver.pages_evicted) << abbr;
  }
}

// Directional results from the paper's evaluation.

TEST(System, CppeBeatsBaselineOnThrashing) {
  // Type IV: MHPE's MRU handles cyclic reuse that LRU thrashes on (Fig 8).
  const RunResult base = run("HSD", presets::baseline(), 0.5);
  const RunResult cppe = run("HSD", presets::cppe(), 0.5);
  EXPECT_GT(cppe.speedup_vs(base), 1.2);
}

TEST(System, CppeBeatsBaselineOnStridedApps) {
  // NW/MVT: the pattern-aware prefetcher stops migrating untouched pages.
  for (const char* abbr : {"NW", "MVT"}) {
    const RunResult base = run(abbr, presets::baseline(), 0.5);
    const RunResult cppe = run(abbr, presets::cppe(), 0.5);
    EXPECT_GT(cppe.speedup_vs(base), 1.5) << abbr;
  }
}

TEST(System, CppeComparableOnStreamingAndRegionMoving) {
  // Type I and VI favour LRU; CPPE must not lose much (Fig 8's observation).
  for (const char* abbr : {"2DC", "B+T", "HYB"}) {
    const RunResult base = run(abbr, presets::baseline(), 0.5);
    const RunResult cppe = run(abbr, presets::cppe(), 0.5);
    EXPECT_GT(cppe.speedup_vs(base), 0.85) << abbr;
  }
}

TEST(System, MhpeSwitchesToLruOnIrregularButNotOnThrashing) {
  const RunResult thrash = run("SRD", presets::cppe(), 0.5);
  EXPECT_TRUE(thrash.mhpe_used);
  EXPECT_FALSE(thrash.mhpe_switched_to_lru);  // Type IV stays MRU

  const RunResult irregular = run("B+T", presets::cppe(), 0.5);
  EXPECT_TRUE(irregular.mhpe_switched_to_lru);  // Type VI: high untouch
}

TEST(System, DisablingPrefetchHurtsStreaming) {
  // Fig 10: regular apps slow down badly without prefetch once memory fills.
  const RunResult base = run("2DC", presets::baseline(), 0.5);
  const RunResult nopf = run("2DC", presets::disable_prefetch_when_full(), 0.5);
  EXPECT_GT(static_cast<double>(nopf.cycles) / static_cast<double>(base.cycles), 1.3);
}

TEST(System, PrefetchingWhenFullInflatesEvictionsOnStridedApps) {
  // Fig 4's metric: eviction count, prefetch-always vs prefetch-off-when-full.
  const RunResult always = run("MVT", presets::baseline(), 0.5);
  const RunResult gated = run("MVT", presets::disable_prefetch_when_full(), 0.5);
  EXPECT_GT(static_cast<double>(always.driver.pages_evicted) /
                static_cast<double>(gated.driver.pages_evicted),
            1.2);
}

TEST(System, PatternBufferEngagesOnlyWhereExpected) {
  EXPECT_GT(run("MVT", presets::cppe(), 0.5).pattern_matches, 0u);
  EXPECT_EQ(run("SRD", presets::cppe(), 0.5).pattern_matches, 0u);  // untouch 0
}

TEST(System, CapacityFloorAppliedForTinyOversubscription) {
  const auto wl = make_benchmark("STN");  // 1024 pages
  UvmSystem sys(SystemConfig{}, presets::baseline(), *wl, 0.01);
  const RunResult r = sys.run();
  EXPECT_GE(r.capacity_pages, 16u * kChunkPages);
  EXPECT_TRUE(r.completed);
}

class EveryBenchmarkCompletes
    : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(TableII, EveryBenchmarkCompletes,
                         ::testing::ValuesIn(benchmark_abbrs()),
                         [](const auto& pinfo) {
                           std::string n = pinfo.param;
                           for (char& c : n)
                             if (c == '+') c = 'p';
                           return n;
                         });

// Property sweep: every Table II workload completes under both headline
// configurations at 50% oversubscription and satisfies the accounting
// invariants.
TEST_P(EveryBenchmarkCompletes, UnderBaselineAndCppe) {
  for (const PolicyConfig& pol : {presets::baseline(), presets::cppe()}) {
    const RunResult r = run(GetParam(), pol, 0.5);
    ASSERT_TRUE(r.completed) << GetParam();
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.driver.page_faults, 0u);
    EXPECT_LE(r.driver.pages_migrated_in - r.driver.pages_evicted, r.capacity_pages);
    EXPECT_EQ(r.driver.pages_demanded + r.driver.pages_prefetched,
              r.driver.pages_migrated_in);
  }
}

}  // namespace
}  // namespace uvmsim
