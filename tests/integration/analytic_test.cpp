// Analytic validations: scenarios with closed-form expectations that pin
// the simulator's arithmetic (compulsory misses, migration totals, link
// occupancy, translation-path counting) rather than qualitative shape.
#include <gtest/gtest.h>

#include "core/policy_factory.hpp"
#include "core/uvm_system.hpp"
#include "gpu/gpu.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/patterns.hpp"

namespace uvmsim {
namespace {

SystemConfig small_sys() {
  SystemConfig s;
  s.num_sms = 4;
  return s;
}

TEST(Analytic, DemandPagingStreamingHasExactCompulsoryMisses) {
  // One streaming pass, no prefetch, memory fits: every page faults exactly
  // once (compulsory), nothing is evicted, nothing is prefetched.
  StreamingWorkload wl("s", "S", 2048, 1.0);
  UvmSystem sys(small_sys(), presets::demand_only(), wl, 1.0);
  const RunResult r = sys.run();
  EXPECT_EQ(r.driver.page_faults, 2048u);
  EXPECT_EQ(r.driver.pages_migrated_in, 2048u);
  EXPECT_EQ(r.driver.pages_prefetched, 0u);
  EXPECT_EQ(r.driver.pages_evicted, 0u);
}

TEST(Analytic, ChunkPrefetchStreamingMigratesInChunkOps) {
  // With the locality prefetcher and ample memory, a streaming pass needs
  // exactly footprint/16 migration operations and moves every page once.
  StreamingWorkload wl("s", "S", 2048, 1.0);
  UvmSystem sys(small_sys(), presets::baseline(), wl, 1.0);
  const RunResult r = sys.run();
  EXPECT_EQ(r.driver.migration_ops, 2048u / kChunkPages);
  EXPECT_EQ(r.driver.pages_migrated_in, 2048u);
  EXPECT_EQ(r.driver.pages_evicted, 0u);
}

TEST(Analytic, H2DOccupancyMatchesMigratedPages) {
  StreamingWorkload wl("s", "S", 1024, 1.0);
  UvmSystem sys(small_sys(), presets::baseline(), wl, 0.5);
  const RunResult r = sys.run();
  EXPECT_EQ(r.h2d_pages, r.driver.pages_migrated_in);
  EXPECT_EQ(r.d2h_pages, r.driver.pages_evicted);
}

TEST(Analytic, LruCyclicThrashMigratesEveryIterationCppeDoesNot) {
  // Cyclic reuse over a footprint at 50% capacity:
  //  * chunk-LRU evicts each chunk before its reuse -> every iteration
  //    re-migrates (pages_in ≈ iters * N);
  //  * MHPE's MRU keeps a stable resident set -> pages_in well below that.
  const u64 n = 2048;
  const double iters = 4.0;
  ThrashingWorkload wl("t", "T", n, iters);

  UvmSystem lru_sys(small_sys(), presets::baseline(), wl, 0.5);
  const RunResult lru = lru_sys.run();
  EXPECT_GT(lru.driver.pages_migrated_in, static_cast<u64>(0.9 * iters * n));

  UvmSystem cppe_sys(small_sys(), presets::cppe(), wl, 0.5);
  const RunResult cppe = cppe_sys.run();
  // MRU retains ~capacity pages across iterations: migrations ≈
  // N + (iters-1) * (N - capacity) = N + 3 * N/2 = 2.5 N (vs 4 N for LRU).
  EXPECT_LT(cppe.driver.pages_migrated_in,
            static_cast<u64>(0.75 * static_cast<double>(lru.driver.pages_migrated_in)));
  EXPECT_GT(cppe.driver.pages_migrated_in, n);  // still must refault something
}

TEST(Analytic, StridedPatternQuartersMigrationTraffic) {
  // Stride-4 rounds: once patterns are learned, CPPE migrates ~4 pages per
  // chunk instead of 16 — steady-state traffic should drop by well over 2x.
  const auto wl = make_benchmark("MVT");
  UvmSystem base_sys(SystemConfig{}, presets::baseline(), *wl, 0.5);
  UvmSystem cppe_sys(SystemConfig{}, presets::cppe(), *wl, 0.5);
  const RunResult base = base_sys.run();
  const RunResult cppe = cppe_sys.run();
  EXPECT_LT(cppe.driver.pages_migrated_in * 2, base.driver.pages_migrated_in);
}

TEST(Analytic, EveryL2TlbMissBecomesAWalk) {
  EventQueue eq;
  SystemConfig sys = small_sys();
  PolicyConfig pol = presets::baseline();
  StreamingWorkload wl("s", "S", 512, 1.0);
  UvmDriver driver(eq, sys, pol, 512, 512);
  driver.set_policy(make_eviction_policy(pol, driver.chain()));
  driver.set_prefetcher(make_prefetcher(pol));
  Gpu gpu(eq, sys, driver, wl, 1);
  gpu.launch();
  eq.run();
  const auto st = gpu.stats();
  EXPECT_EQ(gpu.walker().walks_requested(), st.l2_tlb_misses);
  EXPECT_EQ(gpu.walker().walks_requested(),
            gpu.walker().walks_performed() + gpu.walker().walks_coalesced());
  // Translation-path conservation: every access hits L1, or L2, or walks.
  EXPECT_EQ(st.l1_tlb_hits + st.l2_tlb_hits + st.l2_tlb_misses, st.accesses);
}

TEST(Analytic, FaultLatencyLowerBoundsRuntime) {
  // Even with perfect overlap, a demand-only serial chain of faults cannot
  // beat (distinct chunks / driver concurrency) * fault latency on the
  // critical path for a single-warp workload.
  SystemConfig sys;
  sys.num_sms = 1;
  sys.warps_per_sm = 1;
  StreamingWorkload wl("s", "S", 256, 1.0);
  UvmSystem system(sys, presets::demand_only(), wl, 1.0);
  const RunResult r = system.run();
  // One warp faults serially: 256 faults, each >= 20us.
  EXPECT_GE(r.cycles, 256u * sys.fault_latency_cycles());
}

}  // namespace
}  // namespace uvmsim
