// The flight recorder doubles as a determinism checker (ISSUE: satellite 4
// and acceptance criterion 3): two identical CPPE runs at 50% oversub must
// produce byte-identical JSONL traces, identical event streams, and identical
// results. The whole-pipeline guarantee rests on EventQueue's (cycle, seq)
// FIFO ordering plus the audit that no component iterates an unordered map.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy_factory.hpp"
#include "core/uvm_system.hpp"
#include "obs/interval_metrics.hpp"
#include "obs/trace_sink.hpp"
#include "workloads/benchmarks.hpp"

namespace uvmsim {
namespace {

struct TracedRun {
  std::string jsonl;
  std::vector<TraceEvent> events;
  RunResult result;
};

TracedRun traced_run(const std::string& abbr, double oversub,
                     const PolicyConfig& pol = presets::cppe()) {
  const auto wl = make_benchmark(abbr);
  UvmSystem sys(SystemConfig{}, pol, *wl, oversub);
  std::ostringstream os;
  JsonlSink jsonl(os);
  RingSink ring(1u << 20);
  sys.recorder().add_sink(&jsonl);
  sys.recorder().add_sink(&ring);
  TracedRun out;
  out.result = sys.run();
  EXPECT_TRUE(out.result.completed);
  EXPECT_EQ(ring.dropped(), 0u) << "ring too small to hold the full trace";
  out.jsonl = os.str();
  out.events = ring.events();
  return out;
}

TEST(TraceDeterminism, IdenticalRunsProduceByteIdenticalTraces) {
  const TracedRun a = traced_run("NW", 0.5);
  const TracedRun b = traced_run("NW", 0.5);

  // Byte-identical JSONL is the acceptance bar: a plain `cmp` of two trace
  // files must pass, so diffing traces localises real behaviour changes.
  EXPECT_EQ(a.jsonl, b.jsonl);

  // The structured view pinpoints any divergence instead of just detecting it.
  const auto div = first_divergence(a.events, b.events);
  EXPECT_EQ(div, std::nullopt)
      << "first divergence at event " << *div << ": "
      << to_jsonl(a.events[std::min(*div, a.events.size() - 1)]);
}

// Satellite 4: same seed, same result — end-of-run counters, not just the
// event stream, must agree at 50% oversubscription.
TEST(TraceDeterminism, SameSeedSameResult) {
  const TracedRun a = traced_run("HOT", 0.5);
  const TracedRun b = traced_run("HOT", 0.5);
  EXPECT_EQ(a.result.cycles, b.result.cycles);
  EXPECT_EQ(a.result.driver.page_faults, b.result.driver.page_faults);
  EXPECT_EQ(a.result.driver.faults_coalesced, b.result.driver.faults_coalesced);
  EXPECT_EQ(a.result.driver.migration_ops, b.result.driver.migration_ops);
  EXPECT_EQ(a.result.driver.pages_migrated_in, b.result.driver.pages_migrated_in);
  EXPECT_EQ(a.result.driver.pages_evicted, b.result.driver.pages_evicted);
  EXPECT_EQ(a.result.mhpe_wrong_evictions, b.result.mhpe_wrong_evictions);
  EXPECT_EQ(a.result.mhpe_switched_to_lru, b.result.mhpe_switched_to_lru);
  EXPECT_EQ(a.result.pattern_matches, b.result.pattern_matches);
  EXPECT_EQ(a.result.pattern_mismatches, b.result.pattern_mismatches);
  EXPECT_EQ(a.result.trace_events_recorded, b.result.trace_events_recorded);
  EXPECT_GT(a.result.trace_events_recorded, 0u);
}

// An oversubscribed CPPE run exercises the entire fault lifecycle, so every
// event type must appear at least once — a type that stops firing means an
// instrumentation point was lost. The two batched-service events are gated
// on fault_batch > 1 (so classic window=1 traces stay byte-identical) and
// are covered by a second, batched run.
TEST(TraceDeterminism, OversubscribedRunCoversAllEventTypes) {
  const TracedRun r = traced_run("NW", 0.5);
  std::set<EventType> seen;
  for (const TraceEvent& e : r.events) seen.insert(e.type);
  for (u32 i = 0; i < kNumEventTypes; ++i) {
    const auto t = static_cast<EventType>(i);
    if (t == EventType::kFaultBatchFormed || t == EventType::kBatchServiced) {
      EXPECT_FALSE(seen.contains(t))
          << "batch event emitted by a window=1 run: " << to_string(t);
      continue;
    }
    // Fabric events only fire on multi-GPU runs (tests/fabric); a single-GPU
    // run emitting one would break the byte-identity guarantee.
    if (t == EventType::kPageSpilled || t == EventType::kRemoteAccess ||
        t == EventType::kPeerMigration) {
      EXPECT_FALSE(seen.contains(t))
          << "fabric event emitted by a single-GPU run: " << to_string(t);
      continue;
    }
    // The vacuous pattern hit is only reachable through direct plan() calls
    // on resident pages (the integrated fault path filters those), so an
    // integrated run emitting one would break trace byte-identity; direct
    // coverage lives in tests/prefetch/pattern_aware_test.cpp.
    if (t == EventType::kPatternHitEmpty) {
      EXPECT_FALSE(seen.contains(t))
          << "vacuous pattern hit emitted by an integrated run";
      continue;
    }
    // Large-pages events only fire when PolicyConfig::large_pages is set; a
    // default run emitting one would break the byte-identity guarantee.
    // Presence is covered by the large-pages run below.
    if (t == EventType::kCoalesce || t == EventType::kSplinter ||
        t == EventType::kLargeFrameEvicted) {
      EXPECT_FALSE(seen.contains(t))
          << "large-pages event emitted by a default run: " << to_string(t);
      continue;
    }
    // Job lifecycle events only fire in --fleet runs (fleet-level recorder);
    // presence is covered by tests/fleet. A fixed-N run emitting one would
    // break the byte-identity guarantee.
    if (t == EventType::kJobArrived || t == EventType::kJobAdmitted ||
        t == EventType::kJobRejected || t == EventType::kJobCompleted) {
      EXPECT_FALSE(seen.contains(t))
          << "fleet event emitted by a fixed-N run: " << to_string(t);
      continue;
    }
    // GPU-driven backend events only fire under --fault-backend gpu-driven;
    // presence is covered by the gpu-driven run below. A host-backend run
    // emitting one would break the byte-identity guarantee.
    if (t == EventType::kFaultEnqueued || t == EventType::kFaultQueueFull ||
        t == EventType::kGpuFaultServiced) {
      EXPECT_FALSE(seen.contains(t))
          << "backend event emitted by a host-backend run: " << to_string(t);
      continue;
    }
    EXPECT_TRUE(seen.contains(t))
        << "event type never emitted: " << to_string(t);
  }
  // The recorder's own count matches what the sinks saw.
  EXPECT_EQ(r.result.trace_events_recorded, r.events.size());

  // A narrow driver (one slot) with a wide batch window keeps a backlog, so
  // batches form and both gated event types must fire.
  PolicyConfig batched = presets::with_fault_batch(presets::cppe(), 4);
  batched.driver_concurrency = 1;
  const TracedRun rb = traced_run("NW", 0.5, batched);
  std::set<EventType> seen_batched;
  for (const TraceEvent& e : rb.events) seen_batched.insert(e.type);
  EXPECT_TRUE(seen_batched.contains(EventType::kFaultBatchFormed));
  EXPECT_TRUE(seen_batched.contains(EventType::kBatchServiced));

  // With --large-pages on, the dense streaming run coalesces fully-touched
  // 2 MB regions, splinters partially-cold frames under eviction pressure,
  // and whole-frame-evicts entirely-cold ones — all three gated event types
  // must fire, and the run must stay deterministic. SRD at 90% residency:
  // the ¼-scaled footprints make 512-page regions a large fraction of
  // device memory, so only the big dense workloads coalesce at all.
  PolicyConfig lp = presets::cppe();
  lp.large_pages = true;
  const TracedRun rl = traced_run("SRD", 0.9, lp);
  std::set<EventType> seen_large;
  for (const TraceEvent& e : rl.events) seen_large.insert(e.type);
  EXPECT_TRUE(seen_large.contains(EventType::kCoalesce));
  EXPECT_TRUE(seen_large.contains(EventType::kSplinter));
  EXPECT_TRUE(seen_large.contains(EventType::kLargeFrameEvicted));
  const TracedRun rl2 = traced_run("SRD", 0.9, lp);
  EXPECT_EQ(rl.jsonl, rl2.jsonl);
}

// GPU-driven backend (--fault-backend gpu-driven): the gated enqueue and
// handler-pickup events must fire, queue-full stalls must fire once the
// per-SM queues are squeezed, and the run must stay byte-deterministic.
TEST(TraceDeterminism, GpuDrivenBackendEventsAndDeterminism) {
  auto gpu_run = [](u32 queue_depth) {
    const auto wl = make_benchmark("NW");
    SystemConfig sc;
    sc.fault_backend = FaultBackendKind::kGpuDriven;
    sc.gpu_fault_queue_depth = queue_depth;
    UvmSystem sys(sc, presets::cppe(), *wl, 0.5);
    std::ostringstream os;
    JsonlSink jsonl(os);
    RingSink ring(1u << 20);
    sys.recorder().add_sink(&jsonl);
    sys.recorder().add_sink(&ring);
    TracedRun out;
    out.result = sys.run();
    EXPECT_TRUE(out.result.completed);
    out.jsonl = os.str();
    out.events = ring.events();
    return out;
  };
  const TracedRun a = gpu_run(32);
  std::set<EventType> seen;
  for (const TraceEvent& e : a.events) seen.insert(e.type);
  EXPECT_TRUE(seen.contains(EventType::kFaultEnqueued));
  EXPECT_TRUE(seen.contains(EventType::kGpuFaultServiced));
  const TracedRun b = gpu_run(32);
  EXPECT_EQ(a.jsonl, b.jsonl);

  // Depth 1: every SM queue overflows under a fault burst.
  const TracedRun c = gpu_run(1);
  std::set<EventType> seen_tight;
  for (const TraceEvent& e : c.events) seen_tight.insert(e.type);
  EXPECT_TRUE(seen_tight.contains(EventType::kFaultQueueFull));
  EXPECT_GT(c.result.faultsvc.queue_full_stalls, 0u);
  EXPECT_TRUE(c.result.completed) << "overflowed faults must still be serviced";
  const TracedRun d = gpu_run(1);
  EXPECT_EQ(c.jsonl, d.jsonl);
}

// Interval metrics are a pure fold of the event stream, so they inherit its
// determinism; sanity-check that the fold agrees with the run's counters.
TEST(TraceDeterminism, IntervalMetricsAgreeWithRunCounters) {
  const auto wl = make_benchmark("NW");
  UvmSystem sys(SystemConfig{}, presets::cppe(), *wl, 0.5);
  IntervalMetricsSink metrics;
  sys.recorder().add_sink(&metrics);
  const RunResult r = sys.run();
  metrics.finalize(sys.queue().now());
  ASSERT_FALSE(metrics.rows().empty());
  u64 faults = 0, pages_in = 0, evicted = 0, wrong = 0;
  for (const IntervalRow& row : metrics.rows()) {
    faults += row.faults;
    pages_in += row.pages_migrated;
    evicted += row.pages_evicted;
    wrong += row.wrong_evictions;
  }
  EXPECT_EQ(faults, r.driver.page_faults);
  EXPECT_EQ(pages_in, r.driver.pages_migrated_in);
  EXPECT_EQ(evicted, r.driver.pages_evicted);
  EXPECT_EQ(wrong, r.mhpe_wrong_evictions);
}

}  // namespace
}  // namespace uvmsim
