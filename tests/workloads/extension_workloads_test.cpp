// Extension workloads (BFR, MLT): registered in make_benchmark but kept out
// of benchmark_table(), so the Table II set the paper figures geomean over
// stays at 23 entries.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/benchmarks.hpp"
#include "workloads/graph_frontier.hpp"
#include "workloads/phase_shift.hpp"

namespace uvmsim {
namespace {

std::vector<PageId> drain(const Workload& wl, u32 g, u32 total, u64 seed = 1) {
  std::vector<PageId> pages;
  auto s = wl.make_stream({g, total, seed});
  Access a;
  while (s->next(a)) pages.push_back(a.page);
  return pages;
}

TEST(ExtensionWorkloads, RegisteredByNameButNotInTable) {
  const auto bfr = make_benchmark("BFR");
  EXPECT_EQ(bfr->abbr(), "BFR");
  const auto mlt = make_benchmark("MLT");
  EXPECT_EQ(mlt->abbr(), "MLT");
  for (const auto& b : benchmark_table()) {
    EXPECT_NE(b.abbr, "BFR");
    EXPECT_NE(b.abbr, "MLT");
  }
}

TEST(GraphFrontier, StaysInFootprintAndIsDeterministic) {
  GraphFrontierWorkload wl("g", "G", 1024);
  const auto a = drain(wl, 3, 8, 42);
  const auto b = drain(wl, 3, 8, 42);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  for (PageId p : a) ASSERT_LT(p, 1024u);
}

TEST(GraphFrontier, WarpsDrawDifferentPages) {
  GraphFrontierWorkload wl("g", "G", 1024);
  EXPECT_NE(drain(wl, 0, 8, 7), drain(wl, 1, 8, 8));
}

// The frontier triangle: middle levels visit far more distinct pages per
// level than the seed level — the burst shape the GPU-driven backend's
// ablation leans on.
TEST(GraphFrontier, FrontierExpandsTowardsTheMiddleLevels) {
  const u64 n = 2048;
  GraphFrontierWorkload wl("g", "G", n, /*levels=*/8, /*seed_fraction=*/0.05,
                           /*peak_fraction=*/0.85);
  // Segment order is level-major (frontier, gather, frontier, gather, ...);
  // count distinct pages over whole-warp-set draws and check coverage grows
  // with footprint-wide gathers mixed in: total coverage must be near-full.
  std::set<PageId> seen;
  for (u32 g = 0; g < 16; ++g)  // per-warp seeds, as Gpu derives them
    for (PageId p : drain(wl, g, 16, 1000 + g)) seen.insert(p);
  EXPECT_GT(seen.size(), n / 2);
}

TEST(MlTraining, AlternatesStreamingAndWeightsHotPhases) {
  const auto wl = make_benchmark("MLT");
  const auto* composite = dynamic_cast<const PhaseShiftWorkload*>(wl.get());
  ASSERT_NE(composite, nullptr);
  ASSERT_EQ(composite->phases().size(), 4u);
  EXPECT_EQ(composite->phases()[0]->pattern(), PatternType::kStreaming);
  EXPECT_EQ(composite->phases()[1]->pattern(),
            PatternType::kRepetitiveThrashing);
  EXPECT_EQ(composite->phases()[2]->pattern(), PatternType::kStreaming);
  EXPECT_EQ(composite->phases()[3]->pattern(),
            PatternType::kRepetitiveThrashing);
}

TEST(MlTraining, StaysInFootprintAndIsDeterministic) {
  const auto wl = make_benchmark("MLT");
  const u64 n = wl->footprint_pages();
  EXPECT_EQ(n, scaled_pages(48.0));
  const auto a = drain(*wl, 2, 8, 5);
  EXPECT_EQ(a, drain(*wl, 2, 8, 5));
  ASSERT_FALSE(a.empty());
  for (PageId p : a) ASSERT_LT(p, n);
  // The weights-hot phases revisit the hot prefix harder than the tail.
  std::map<PageId, int> counts;
  for (u32 g = 0; g < 8; ++g)
    for (PageId p : drain(*wl, g, 8)) ++counts[p];
  EXPECT_GT(counts[0], counts[static_cast<PageId>(n - kChunkPages)]);
}

}  // namespace
}  // namespace uvmsim
