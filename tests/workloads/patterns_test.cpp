// Distinctive properties of each access-pattern family — the behaviours the
// policies key on must actually be present in the generators.
#include "workloads/patterns.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace uvmsim {
namespace {

std::vector<PageId> drain(const Workload& wl, u32 g, u32 total, u64 seed = 1) {
  std::vector<PageId> pages;
  auto s = wl.make_stream({g, total, seed});
  Access a;
  while (s->next(a)) pages.push_back(a.page);
  return pages;
}

TEST(Patterns, StreamingVisitsEveryPageExactlyOnce) {
  StreamingWorkload wl("s", "S", 512, 1.0);
  std::set<PageId> seen;
  u64 visits = 0;
  for (u32 g = 0; g < 8; ++g) {
    for (PageId p : drain(wl, g, 8)) {
      seen.insert(p);
      ++visits;
    }
  }
  EXPECT_EQ(seen.size(), 512u);
  EXPECT_EQ(visits, 2u * 512u);  // acc_per_page = 2
}

TEST(Patterns, PartlyRepetitiveReusesHotPrefix) {
  PartlyRepetitiveWorkload wl("p", "P", 1000, 1.0, 0.2, 3.0);
  std::map<PageId, int> counts;
  for (PageId p : drain(wl, 0, 1)) ++counts[p];
  // Hot prefix (first 200 pages) visited ~4x; tail once.
  EXPECT_GT(counts[0], counts[900]);
  EXPECT_GE(counts[0], 4);
}

TEST(Patterns, ThrashingCyclesFullFootprint) {
  ThrashingWorkload wl("t", "T", 256, 4.0);
  std::map<PageId, int> counts;
  for (u32 g = 0; g < 4; ++g)
    for (PageId p : drain(wl, g, 4)) ++counts[p];
  EXPECT_EQ(counts.size(), 256u);
  for (const auto& [p, n] : counts) ASSERT_EQ(n, 4 * 2) << p;  // 4 iters x acc 2
}

TEST(Patterns, SharedThrashingTouchesPagesFromTwoWarps) {
  ThrashingWorkload wl("t", "T", 256, 2.0, 0, /*shared_pages=*/true);
  // With alternating offsets, page 0 is visited by warp 0 (iter 0) and by
  // warp total/2... verify two distinct warps hit the same page.
  std::map<PageId, std::set<u32>> owners;
  const u32 total = 8;
  for (u32 g = 0; g < total; ++g)
    for (PageId p : drain(wl, g, total)) owners[p].insert(g);
  u64 shared = 0;
  for (const auto& [p, o] : owners)
    if (o.size() >= 2) ++shared;
  EXPECT_GT(shared, 200u);  // nearly all pages shared across warps
}

TEST(Patterns, BacktrackStaysInRegion) {
  ThrashingWorkload wl("t", "T", 100, 2.0, 0, false, /*backtrack_prob=*/0.2,
                       /*backtrack_pages=*/30);
  for (PageId p : drain(wl, 0, 2)) ASSERT_LT(p, 100u);
}

TEST(Patterns, RepetitiveThrashingHitsHotAndCold) {
  RepetitiveThrashingWorkload wl("r", "R", 1000, 0.3, 4.0, 2.0,
                                 ColdTraffic::kStream);
  std::map<PageId, int> counts;
  for (u32 g = 0; g < 4; ++g)
    for (PageId p : drain(wl, g, 4)) ++counts[p];
  // Hot region (first 300 pages) is revisited more than the cold remainder.
  EXPECT_GT(counts[0], counts[800]);
  EXPECT_GT(counts[800], 0);
}

TEST(Patterns, FixedSparseColdIsStableAcrossEpochs) {
  // The kFixedSparse cold traffic must visit the SAME page subset in both
  // epochs — that stability is what the pattern buffer exploits for SPV.
  RepetitiveThrashingWorkload wl("r", "R", 1000, 0.2, 2.0, 1.0,
                                 ColdTraffic::kFixedSparse);
  const u64 hot = 200;
  const auto pages = drain(wl, 2, 8);
  // Segments: hot, cold, hot, cold. Collect the two cold sets.
  std::set<PageId> epoch1, epoch2;
  bool seen_cold_gap = false;
  std::set<PageId>* current = &epoch1;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    if (pages[i] < hot) {
      if (!epoch1.empty()) seen_cold_gap = true;
      continue;
    }
    if (seen_cold_gap) current = &epoch2;
    current->insert(pages[i]);
  }
  ASSERT_FALSE(epoch1.empty());
  ASSERT_FALSE(epoch2.empty());
  EXPECT_EQ(epoch1, epoch2);
}

TEST(Patterns, RandomColdDiffersAcrossEpochs) {
  RepetitiveThrashingWorkload wl("r", "R", 4000, 0.1, 2.0, 2.0,
                                 ColdTraffic::kRandom);
  const u64 hot = 400;
  std::vector<PageId> cold;
  for (PageId p : drain(wl, 0, 4))
    if (p >= hot) cold.push_back(p);
  // Two epochs of draws: the halves should not be identical sequences.
  ASSERT_GT(cold.size(), 10u);
  const std::vector<PageId> first(cold.begin(), cold.begin() + cold.size() / 2);
  const std::vector<PageId> second(cold.begin() + cold.size() / 2, cold.end());
  EXPECT_NE(first, std::vector<PageId>(second.begin(),
                                       second.begin() + first.size()));
}

TEST(Patterns, RegionMovingWindowSlides) {
  RegionMovingWorkload wl("m", "M", 2000, 0.2, 0.5);
  const auto pages = drain(wl, 0, 4);
  ASSERT_FALSE(pages.empty());
  // Early accesses live near the start, late accesses near the end.
  u64 early_max = 0, late_min = ~u64{0};
  for (std::size_t i = 0; i < pages.size() / 8; ++i)
    early_max = std::max(early_max, pages[i]);
  for (std::size_t i = pages.size() - pages.size() / 8; i < pages.size(); ++i)
    late_min = std::min(late_min, pages[i]);
  // Early accesses stay within the first couple of region positions; late
  // accesses within the last (regions are 400 pages, sliding by 200).
  EXPECT_LT(early_max, 700u);
  EXPECT_GT(late_min, 1200u);
}

TEST(Patterns, IrregularSparseCoversFootprintOverEpochs) {
  IrregularSparseWorkload wl("i", "I", 1000, 8, 1.0);
  std::set<PageId> seen;
  for (u32 g = 0; g < 8; ++g)
    for (PageId p : drain(wl, g, 8, 100 + g)) seen.insert(p);
  // Uniform random over 8 epochs x 8 warps covers most of the footprint.
  EXPECT_GT(seen.size(), 900u);
}

TEST(Patterns, StridedFullPassThenStridedRounds) {
  StridedWorkload wl("s", "S", 640, 4, 2.0, /*full_rounds=*/1.0);
  std::map<PageId, int> counts;
  for (u32 g = 0; g < 4; ++g)
    for (PageId p : drain(wl, g, 4)) ++counts[p];
  // Off-stride pages visited once (full pass); on-stride pages more.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], 0);
}

}  // namespace
}  // namespace uvmsim
