#include "workloads/segment.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace uvmsim {
namespace {

std::vector<PageId> drain(AccessStream& s) {
  std::vector<PageId> pages;
  Access a;
  while (s.next(a)) pages.push_back(a.page);
  return pages;
}

TEST(Segment, SequentialWalkCoversRegionOnce) {
  SegmentStream s({Segment::walk(0, 10, 0, 1, 1.0, /*acc=*/1)}, 1);
  const auto pages = drain(s);
  ASSERT_EQ(pages.size(), 10u);
  for (u64 i = 0; i < 10; ++i) EXPECT_EQ(pages[i], i);
}

TEST(Segment, WalkWrapsCyclically) {
  SegmentStream s({Segment::walk(0, 4, 0, 1, 2.0, 1)}, 1);
  const auto pages = drain(s);
  EXPECT_EQ(pages, (std::vector<PageId>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(Segment, StridedWalkVisitsResidueClass) {
  // stride 4 over 16 pages: 0, 4, 8, 12.
  SegmentStream s({Segment::walk(0, 16, 0, 4, 1.0, 1)}, 1);
  EXPECT_EQ(drain(s), (std::vector<PageId>{0, 4, 8, 12}));
}

TEST(Segment, AccPerPageRepeatsEachVisit) {
  SegmentStream s({Segment::walk(0, 3, 0, 1, 1.0, /*acc=*/3)}, 1);
  EXPECT_EQ(drain(s), (std::vector<PageId>{0, 0, 0, 1, 1, 1, 2, 2, 2}));
}

TEST(Segment, BaseOffsetsRegion) {
  SegmentStream s({Segment::walk(100, 4, 0, 1, 1.0, 1)}, 1);
  for (PageId p : drain(s)) {
    EXPECT_GE(p, 100u);
    EXPECT_LT(p, 104u);
  }
}

TEST(Segment, RandomStaysInRegionAndIsDeterministic) {
  SegmentStream a({Segment::random(50, 20, 100, 1)}, 9);
  SegmentStream b({Segment::random(50, 20, 100, 1)}, 9);
  const auto pa = drain(a), pb = drain(b);
  EXPECT_EQ(pa, pb);
  ASSERT_EQ(pa.size(), 100u);
  for (PageId p : pa) {
    EXPECT_GE(p, 50u);
    EXPECT_LT(p, 70u);
  }
}

TEST(Segment, SegmentsRunInOrder) {
  SegmentStream s({Segment::walk(0, 2, 0, 1, 1.0, 1),
                   Segment::walk(10, 2, 0, 1, 1.0, 1)},
                  1);
  EXPECT_EQ(drain(s), (std::vector<PageId>{0, 1, 10, 11}));
}

TEST(Segment, ThinkJitterStaysBounded) {
  Segment seg = Segment::walk(0, 100, 0, 1, 1.0, 1, /*think=*/100);
  seg.think_jitter = 30;
  SegmentStream s({seg}, 3);
  Access a;
  while (s.next(a)) {
    EXPECT_GE(a.think, 70u);
    EXPECT_LE(a.think, 130u);
  }
}

TEST(Segment, EmptyStreamEndsImmediately) {
  SegmentStream s({}, 1);
  Access a;
  EXPECT_FALSE(s.next(a));
}

TEST(Segment, WalkHelperComputesVisitsFromRounds) {
  const Segment s = Segment::walk(0, 100, 0, 7, 2.0);
  // ceil(100/7) = 15 visits per round, 2 rounds.
  EXPECT_EQ(s.visits, 30u);
}

}  // namespace
}  // namespace uvmsim
