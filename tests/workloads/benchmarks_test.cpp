// Table II instantiation: all 23 benchmarks build, report the right pattern
// types, stay inside their footprints, and distribute work across warps.
#include "workloads/benchmarks.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workloads/patterns.hpp"

namespace uvmsim {
namespace {

TEST(Benchmarks, TableHas23Entries) {
  EXPECT_EQ(benchmark_table().size(), 23u);
  EXPECT_EQ(benchmark_abbrs().size(), 23u);
}

TEST(Benchmarks, ScaledPagesHasFloor) {
  EXPECT_EQ(scaled_pages(4.0), 1024u);    // 4 MB floors at 4 MB (1024 pages)
  EXPECT_EQ(scaled_pages(128.0), 8192u);  // 128 MB -> 32 MB
  EXPECT_EQ(scaled_pages(1.0), 1024u);
}

TEST(Benchmarks, UnknownAbbreviationThrows) {
  EXPECT_THROW((void)make_benchmark("NOPE"), std::invalid_argument);
}

class AllBenchmarks : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(TableII, AllBenchmarks,
                         ::testing::ValuesIn(benchmark_abbrs()),
                         [](const auto& pinfo) {
                           std::string n = pinfo.param;
                           for (char& c : n)
                             if (c == '+') c = 'p';
                           return n;
                         });

TEST_P(AllBenchmarks, InstantiatesWithTableMetadata) {
  const auto wl = make_benchmark(GetParam());
  ASSERT_NE(wl, nullptr);
  EXPECT_EQ(wl->abbr(), GetParam());
  for (const auto& info : benchmark_table()) {
    if (info.abbr != GetParam()) continue;
    EXPECT_EQ(wl->pattern(), info.type);
    EXPECT_EQ(wl->footprint_pages(), scaled_pages(info.paper_mb));
  }
}

TEST_P(AllBenchmarks, StreamsStayInsideFootprint) {
  const auto wl = make_benchmark(GetParam());
  const u32 total = 8;
  for (u32 g : {0u, 3u, 7u}) {
    auto stream = wl->make_stream({g, total, 1234 + g});
    Access a;
    u64 n = 0;
    while (stream->next(a) && n < 200000) {
      ASSERT_LT(a.page, wl->footprint_pages()) << GetParam();
      ++n;
    }
    EXPECT_GT(n, 0u);
  }
}

TEST_P(AllBenchmarks, StreamsAreFiniteAndDeterministic) {
  const auto wl = make_benchmark(GetParam());
  u64 counts[2] = {0, 0};
  u64 sums[2] = {0, 0};
  for (int rep = 0; rep < 2; ++rep) {
    auto stream = wl->make_stream({0, 8, 42});
    Access a;
    while (stream->next(a) && counts[rep] < 5'000'000) {
      ++counts[rep];
      sums[rep] += a.page;
    }
    ASSERT_LT(counts[rep], 5'000'000u) << "stream did not terminate";
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(sums[0], sums[1]);
}

TEST_P(AllBenchmarks, WarpsPartitionTheWork) {
  // Different warps must not emit identical streams (work is distributed).
  const auto wl = make_benchmark(GetParam());
  auto s0 = wl->make_stream({0, 8, 1});
  auto s1 = wl->make_stream({1, 8, 2});
  Access a0, a1;
  bool differ = false;
  for (int i = 0; i < 100; ++i) {
    const bool h0 = s0->next(a0);
    const bool h1 = s1->next(a1);
    if (!h0 || !h1) break;
    if (a0.page != a1.page) {
      differ = true;
      break;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(Benchmarks, StridedWorkloadsMostlyTouchResidueClass) {
  // NW (stride 2): the strided segment visits even pages, plus a small
  // off-stride noise fraction (boundary accesses).
  const auto wl = make_benchmark("NW");
  auto stream = wl->make_stream({0, 8, 1});
  Access a;
  u64 on = 0, off = 0;
  while (stream->next(a)) (a.page % 2 == 0 ? on : off) += 1;
  EXPECT_GT(on, 20 * off);  // ~2% noise
  EXPECT_GT(off, 0u);       // noise exists (drives Fig 7)
}

TEST(Benchmarks, Mvt4StridePreservedAcrossWrap) {
  const auto wl = make_benchmark("MVT");
  auto stream = wl->make_stream({3, 8, 1});
  Access a;
  u64 on = 0, off = 0;
  while (stream->next(a)) (a.page % 4 == 0 ? on : off) += 1;
  EXPECT_GT(on, 50 * off);  // ~1% noise
}

TEST(Benchmarks, ThrashingWorkloadRevisitsPages) {
  const auto wl = make_benchmark("STN");  // 10 cyclic iterations
  auto stream = wl->make_stream({0, 8, 1});
  Access a;
  std::set<PageId> uniq;
  u64 visits = 0;
  while (stream->next(a)) {
    uniq.insert(a.page);
    ++visits;
  }
  EXPECT_GT(visits, 5 * uniq.size());  // heavy reuse
}

TEST(Benchmarks, StreamingWorkloadDoesNotRevisit) {
  const auto wl = make_benchmark("2DC");
  auto stream = wl->make_stream({0, 8, 1});
  Access a;
  std::set<PageId> uniq;
  u64 visits = 0;
  while (stream->next(a)) {
    uniq.insert(a.page);
    ++visits;
  }
  // acc_per_page = 2 consecutive accesses, each page visited once.
  EXPECT_EQ(visits, 2 * uniq.size());
}

}  // namespace
}  // namespace uvmsim
