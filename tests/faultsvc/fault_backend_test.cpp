#include "faultsvc/fault_backend.hpp"

#include <gtest/gtest.h>

#include "core/policy_factory.hpp"
#include "core/uvm_system.hpp"
#include "faultsvc/gpu_backend.hpp"
#include "faultsvc/host_backend.hpp"
#include "harness/runner.hpp"
#include "workloads/benchmarks.hpp"

namespace uvmsim {
namespace {

SystemConfig gpu_cfg(u32 sms = 4, u32 depth = 32) {
  SystemConfig sys;
  sys.fault_backend = FaultBackendKind::kGpuDriven;
  sys.num_sms = sms;
  sys.gpu_fault_queue_depth = depth;
  return sys;
}

GpuDrivenBackend make_gpu(u32 sms = 4, u32 depth = 32, u32 window = 16) {
  PolicyConfig pol = presets::cppe();
  pol.fault_batch = window;  // the handler window; 1 (the default) drains
                             // one fault per pickup like the classic driver
  return GpuDrivenBackend(gpu_cfg(sms, depth), pol);
}

// --- Factory ----------------------------------------------------------------

TEST(FaultBackendFactory, SelectsBackendFromSystemConfig) {
  SystemConfig sys;
  const PolicyConfig pol = presets::cppe();
  auto host = make_fault_backend(sys, pol);
  EXPECT_EQ(host->kind(), FaultBackendKind::kHostDriver);
  EXPECT_STREQ(host->name(), "host");

  sys.fault_backend = FaultBackendKind::kGpuDriven;
  auto gpu = make_fault_backend(sys, pol);
  EXPECT_EQ(gpu->kind(), FaultBackendKind::kGpuDriven);
  EXPECT_STREQ(gpu->name(), "gpu-driven");
}

TEST(FaultBackendFactory, ParseRoundTrips) {
  EXPECT_EQ(parse_fault_backend_kind("host"), FaultBackendKind::kHostDriver);
  EXPECT_EQ(parse_fault_backend_kind("host-driver"),
            FaultBackendKind::kHostDriver);
  EXPECT_EQ(parse_fault_backend_kind("gpu-driven"),
            FaultBackendKind::kGpuDriven);
  EXPECT_EQ(parse_fault_backend_kind("gpuvm"), FaultBackendKind::kGpuDriven);
  EXPECT_FALSE(parse_fault_backend_kind("bogus").has_value());
}

// --- Host backend: the byte-identity contract -------------------------------

// The host backend charges exactly the pre-seam formula and emits no events
// and no stats, so every golden artefact stays byte-identical.
TEST(HostDriverBackend, ChargesFixedLatencyAndStaysSilent) {
  SystemConfig sys;
  HostDriverBackend b(sys, presets::cppe());
  const Cycle done = b.reserve_service(/*now=*/1000, /*lead=*/7, /*faults=*/3,
                                       /*demand_evictions=*/2);
  EXPECT_EQ(done, 1000 + sys.fault_latency_cycles() +
                      2 * sys.evict_service_cycles());
  // A second batch at the same cycle overlaps fully — no occupancy state.
  EXPECT_EQ(b.reserve_service(1000, 9, 8, 0),
            1000 + sys.fault_latency_cycles());
  const FaultBackendStats& s = b.backend_stats();
  EXPECT_EQ(s.faults_enqueued, 0u);
  EXPECT_EQ(s.queue_full_stalls, 0u);
  EXPECT_EQ(s.handler_pickups, 0u);
  EXPECT_EQ(s.handler_busy_cycles, 0u);
  EXPECT_EQ(s.max_queue_depth, 0u);
}

// An explicit --fault-backend host run is indistinguishable from a default
// run: same cycles, same counters, zero backend stats.
TEST(HostDriverBackend, ExplicitHostMatchesDefaultRun) {
  const auto wl = make_benchmark("NW");
  SystemConfig def;
  SystemConfig host;
  host.fault_backend = FaultBackendKind::kHostDriver;

  UvmSystem a(def, presets::cppe(), *wl, 0.5);
  UvmSystem b(host, presets::cppe(), *wl, 0.5);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.driver.page_faults, rb.driver.page_faults);
  EXPECT_EQ(ra.driver.fault_wait_cycles, rb.driver.fault_wait_cycles);
  EXPECT_EQ(ra.h2d_pages, rb.h2d_pages);
  EXPECT_EQ(rb.fault_backend, "host");
  EXPECT_FALSE(rb.gpu_fault_backend);
  EXPECT_EQ(rb.faultsvc.handler_pickups, 0u);
}

// --- GPU-driven backend: queues, overflow, drain order ----------------------

TEST(GpuDrivenBackend, RoundRobinDrainInterleavesSmQueues) {
  GpuDrivenBackend b = make_gpu(/*sms=*/2, /*depth=*/8);
  // SM 0 raises pages 10, 11; SM 1 raises 20, 21.
  b.raise(10, 0, WakeCallback{}, 0);
  b.raise(11, 0, WakeCallback{}, 0);
  b.raise(20, 1, WakeCallback{}, 0);
  b.raise(21, 1, WakeCallback{}, 0);
  EXPECT_EQ(b.queued(), 4u);
  // One fault per queue visit, starting at the cursor (queue 0).
  const std::vector<PageId> batch = b.take_batch(nullptr);
  EXPECT_EQ(batch, (std::vector<PageId>{10, 20, 11, 21}));
  EXPECT_EQ(b.queued(), 0u);
}

TEST(GpuDrivenBackend, WindowBoundsTheBatch) {
  SystemConfig sys = gpu_cfg(/*sms=*/1, /*depth=*/16);
  PolicyConfig pol = presets::cppe();
  pol.fault_batch = 2;
  GpuDrivenBackend b(sys, pol);
  for (PageId p = 0; p < 5; ++p) b.raise(p, 0, WakeCallback{}, 0);
  EXPECT_EQ(b.take_batch(nullptr), (std::vector<PageId>{0, 1}));
  EXPECT_EQ(b.take_batch(nullptr), (std::vector<PageId>{2, 3}));
  EXPECT_EQ(b.take_batch(nullptr), (std::vector<PageId>{4}));
}

TEST(GpuDrivenBackend, RequeuedLeadDrainsFirst) {
  GpuDrivenBackend b = make_gpu(/*sms=*/1, /*depth=*/8);
  b.raise(1, 0, WakeCallback{}, 0);
  b.raise(2, 0, WakeCallback{}, 0);
  auto first = b.take_batch(nullptr);
  ASSERT_EQ(first.size(), 2u);
  // Page 2 was trimmed out of the plan: it must lead the next batch even
  // though newer faults have arrived since.
  b.requeue_front(2);
  b.raise(3, 0, WakeCallback{}, 0);
  const auto next = b.take_batch(nullptr);
  ASSERT_FALSE(next.empty());
  EXPECT_EQ(next.front(), 2u);
}

TEST(GpuDrivenBackend, FullQueueOverflowsAndRefills) {
  GpuDrivenBackend b = make_gpu(/*sms=*/1, /*depth=*/2);
  b.raise(1, 0, WakeCallback{}, 0);
  b.raise(2, 0, WakeCallback{}, 0);
  b.raise(3, 0, WakeCallback{}, 0);  // queue full -> overflow
  b.raise(4, 0, WakeCallback{}, 0);
  const FaultBackendStats& s = b.backend_stats();
  EXPECT_EQ(s.queue_full_stalls, 2u);
  EXPECT_EQ(s.faults_enqueued, 2u);
  EXPECT_EQ(s.max_queue_depth, 2u);
  // All four faults are still pending and queued (the spill list counts).
  EXPECT_EQ(b.queued(), 4u);
  EXPECT_TRUE(b.pending(3));
  // The first pickup drains the queue; the freed slots absorb the spill
  // list in FIFO order, so the overflowed faults are serviced on the next
  // pickup and nothing is lost.
  EXPECT_EQ(b.take_batch(nullptr), (std::vector<PageId>{1, 2}));
  EXPECT_EQ(b.queued(), 2u);
  EXPECT_EQ(b.take_batch(nullptr), (std::vector<PageId>{3, 4}));
  EXPECT_EQ(b.queued(), 0u);
}

TEST(GpuDrivenBackend, AbsorbedEntriesAreDiscardedOnDrain) {
  GpuDrivenBackend b = make_gpu(/*sms=*/1, /*depth=*/8);
  b.raise(1, 0, WakeCallback{}, 0);
  b.raise(2, 0, WakeCallback{}, 0);
  b.raise(3, 0, WakeCallback{}, 0);
  // Page 2 is absorbed into another plan before the handler picks it up.
  const PendingFault pf = b.extract(2);
  EXPECT_TRUE(pf.faulted);
  EXPECT_FALSE(b.pending(2));
  EXPECT_EQ(b.take_batch(nullptr), (std::vector<PageId>{1, 3}));
}

TEST(GpuDrivenBackend, CoalesceAttachesToPendingFaultOnly) {
  GpuDrivenBackend b = make_gpu();
  EXPECT_FALSE(b.coalesce(5, WakeCallback{}));  // nothing pending yet
  b.raise(5, 2, WakeCallback{}, 10);
  EXPECT_TRUE(b.coalesce(5, WakeCallback{}));
  const PendingFault pf = b.extract(5);
  EXPECT_EQ(pf.raised_at, 10u);
  EXPECT_EQ(pf.waiters.size(), 2u);
}

// --- GPU-driven backend: handler occupancy ----------------------------------

TEST(GpuDrivenBackend, HandlerOccupancySerializesBursts) {
  SystemConfig sys = gpu_cfg();
  GpuDrivenBackend b(sys, presets::cppe());
  const Cycle doorbell = sys.gpu_doorbell_cycles();
  const Cycle per_fault = sys.gpu_fault_service_cycles();

  const Cycle first = b.reserve_service(100, 1, 2, 0);
  EXPECT_EQ(first, 100 + doorbell + 2 * per_fault);
  // A second pickup at the same instant queues behind the busy handler.
  const Cycle second = b.reserve_service(100, 2, 1, 0);
  EXPECT_EQ(second, first + doorbell + per_fault);
  EXPECT_EQ(b.handler_free_at(), second);
  // Once the handler is idle again, service starts at `now`.
  const Cycle third = b.reserve_service(second + 500, 3, 1, 1);
  EXPECT_EQ(third, second + 500 + doorbell + per_fault +
                       sys.evict_service_cycles());

  const FaultBackendStats& s = b.backend_stats();
  EXPECT_EQ(s.handler_pickups, 3u);
  EXPECT_EQ(s.handler_busy_cycles,
            (third - (second + 500)) + (second - first) + (first - 100));
}

TEST(GpuDrivenBackend, PerFaultCostIsWellBelowHostRoundTrip) {
  const SystemConfig sys;
  // GPUVM's core premise, pinned so a config change cannot silently invert
  // the ablation's meaning.
  EXPECT_LT(sys.gpu_fault_service_cycles() * 4, sys.fault_latency_cycles());
  EXPECT_LT(sys.gpu_doorbell_cycles(), sys.gpu_fault_service_cycles());
}

// --- Full-system determinism ------------------------------------------------

// A threaded sweep under the GPU-driven backend is deterministic and
// thread-count independent, like every other configuration.
TEST(GpuDrivenBackend, ThreadedSweepIsDeterministic) {
  std::vector<ExperimentSpec> specs;
  for (const char* w : {"BFS", "NW"})
    for (const u32 depth : {32u, 1u}) {
      ExperimentSpec s;
      s.workload = w;
      s.label = std::string(w) + "@" + std::to_string(depth);
      s.policy = presets::cppe();
      s.oversub = 0.5;
      s.system = gpu_cfg(/*sms=*/4, depth);
      specs.push_back(std::move(s));
    }
  const auto serial = run_sweep(specs, 1);
  const auto parallel = run_sweep(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].result.completed) << i;
    EXPECT_EQ(serial[i].result.cycles, parallel[i].result.cycles) << i;
    EXPECT_EQ(serial[i].result.driver.page_faults,
              parallel[i].result.driver.page_faults)
        << i;
    EXPECT_EQ(serial[i].result.faultsvc.handler_pickups,
              parallel[i].result.faultsvc.handler_pickups)
        << i;
    EXPECT_EQ(serial[i].result.faultsvc.queue_full_stalls,
              parallel[i].result.faultsvc.queue_full_stalls)
        << i;
    EXPECT_EQ(serial[i].result.fault_backend, "gpu-driven") << i;
    EXPECT_TRUE(serial[i].result.gpu_fault_backend) << i;
  }
}

}  // namespace
}  // namespace uvmsim
