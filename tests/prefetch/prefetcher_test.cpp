// NoPrefetcher / LocalityPrefetcher / TreeNeighborhoodPrefetcher planning.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "prefetch/prefetcher.hpp"
#include "prefetch/tree_neighborhood.hpp"

namespace uvmsim {
namespace {

/// Deterministic residency oracle for prefetcher tests.
class TestView final : public ResidencyView {
 public:
  explicit TestView(PageId footprint) : footprint_(footprint) {}
  void add(PageId p) { resident_.insert(p); }
  [[nodiscard]] bool is_resident(PageId p) const override { return resident_.contains(p); }
  [[nodiscard]] PageId footprint_pages() const override { return footprint_; }

 private:
  std::set<PageId> resident_;
  PageId footprint_;
};

TEST(NoPrefetcher, OnlyFaultedPage) {
  NoPrefetcher pf;
  TestView view(1000);
  EXPECT_EQ(pf.plan(42, view), std::vector<PageId>{42});
}

TEST(Locality, PrefetchesWholeChunk) {
  LocalityPrefetcher pf;
  TestView view(1000);
  const auto plan = pf.plan(37, view);  // chunk 2 = pages 32..47
  EXPECT_EQ(plan.size(), kChunkPages);
  for (PageId p = 32; p < 48; ++p)
    EXPECT_NE(std::find(plan.begin(), plan.end(), p), plan.end());
}

TEST(Locality, SkipsResidentPages) {
  LocalityPrefetcher pf;
  TestView view(1000);
  view.add(32);
  view.add(33);
  const auto plan = pf.plan(37, view);
  EXPECT_EQ(plan.size(), kChunkPages - 2);
  EXPECT_EQ(std::find(plan.begin(), plan.end(), 32), plan.end());
}

TEST(Locality, ClipsToFootprint) {
  LocalityPrefetcher pf;
  TestView view(40);  // footprint ends mid-chunk-2
  const auto plan = pf.plan(36, view);
  EXPECT_EQ(plan.size(), 8u);  // pages 32..39 only
  for (PageId p : plan) EXPECT_LT(p, 40u);
}

TEST(Tree, FetchesFaultingBlockWhenRegionCold) {
  TreeNeighborhoodPrefetcher pf;
  TestView view(4096);
  const auto plan = pf.plan(0, view);
  EXPECT_EQ(plan.size(), kChunkPages);  // nothing resident: no climb
}

TEST(Tree, ClimbsWhenNeighborMostlyResident) {
  TreeNeighborhoodPrefetcher pf;
  TestView view(4096);
  // Make the sibling 16-page block fully resident: the 32-page parent node
  // will be >50% resident once the faulting block is planned.
  for (PageId p = 16; p < 32; ++p) view.add(p);
  const auto plan = pf.plan(0, view);
  // Fault block (16) + anything further up the tree that qualified.
  EXPECT_GE(plan.size(), kChunkPages);
  // The parent (pages 0..31) is 100% covered -> the climb continues to the
  // 64-page node, which is now 32/64 = 50%: not strictly more than half, so
  // the climb stops there.
  std::set<PageId> s(plan.begin(), plan.end());
  for (PageId p = 0; p < 16; ++p) EXPECT_TRUE(s.contains(p));
  EXPECT_FALSE(s.contains(40));  // outside the qualified node
}

TEST(Tree, NeverPlansResidentOrOutOfRange) {
  TreeNeighborhoodPrefetcher pf;
  TestView view(100);
  for (PageId p = 20; p < 40; ++p) view.add(p);
  const auto plan = pf.plan(5, view);
  for (PageId p : plan) {
    EXPECT_LT(p, 100u);
    EXPECT_FALSE(view.is_resident(p));
  }
  // No duplicates.
  std::set<PageId> s(plan.begin(), plan.end());
  EXPECT_EQ(s.size(), plan.size());
}

}  // namespace
}  // namespace uvmsim
