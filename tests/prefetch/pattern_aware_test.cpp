// Access-pattern-aware prefetcher: pattern recording, match/mismatch
// behaviour, and a step-by-step reproduction of the paper's Fig 6 deletion-
// scheme example (adapted from the figure's 4-page toy chunk to the real
// 16-page chunk).
#include "prefetch/pattern_aware.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "obs/flight_recorder.hpp"
#include "obs/trace_sink.hpp"
#include "sim/event_queue.hpp"

namespace uvmsim {
namespace {

class TestView final : public ResidencyView {
 public:
  explicit TestView(PageId footprint) : footprint_(footprint) {}
  void add(PageId p) { resident_.insert(p); }
  void remove(PageId p) { resident_.erase(p); }
  [[nodiscard]] bool is_resident(PageId p) const override { return resident_.contains(p); }
  [[nodiscard]] PageId footprint_pages() const override { return footprint_; }

 private:
  std::set<PageId> resident_;
  PageId footprint_;
};

PolicyConfig with_scheme(DeletionScheme s) {
  PolicyConfig cfg;
  cfg.deletion = s;
  return cfg;
}

/// Stride-2 touch pattern: bits 0,2,4,...,14 -> untouch level 8.
TouchBits stride2_pattern() {
  TouchBits t;
  for (u32 i = 0; i < kChunkPages; i += 2) t.set(i);
  return t;
}

TEST(PatternAware, UnrecordedChunkFallsBackToWholeChunk) {
  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme2));
  TestView view(1000);
  EXPECT_EQ(pf.plan(0, view).size(), kChunkPages);
}

TEST(PatternAware, RecordsOnlySparseChunks) {
  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme2));
  pf.on_chunk_evicted(1, stride2_pattern());          // untouch 8: recorded
  TouchBits dense = TouchBits::all();
  dense.clear(0);                                     // untouch 1: not recorded
  pf.on_chunk_evicted(2, dense);
  EXPECT_TRUE(pf.has_pattern(1));
  EXPECT_FALSE(pf.has_pattern(2));
  EXPECT_EQ(pf.records(), 1u);
}

TEST(PatternAware, EmptyPatternIsNeverRecorded) {
  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme2));
  pf.on_chunk_evicted(1, TouchBits::none());
  EXPECT_FALSE(pf.has_pattern(1));
}

TEST(PatternAware, DenseReEvictionLeavesPatternInPlace) {
  // Paper semantics: entries are only removed by the deletion schemes, so a
  // fully-used re-eviction does not clear an earlier sparse pattern. This is
  // the mechanism behind Scheme-2's two-prefetch behaviour on slowly-
  // populating chunks (§VI-B).
  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme2));
  pf.on_chunk_evicted(1, stride2_pattern());
  ASSERT_TRUE(pf.has_pattern(1));
  pf.on_chunk_evicted(1, TouchBits::all());  // fully used this residency
  EXPECT_TRUE(pf.has_pattern(1));            // stale pattern survives
}

TEST(PatternAware, MatchPrefetchesOnlyPatternedPages) {
  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme2));
  TestView view(1000);
  pf.on_chunk_evicted(0, stride2_pattern());
  const auto plan = pf.plan(/*page=*/4, view);  // index 4 is patterned
  EXPECT_EQ(plan.size(), 8u);
  for (PageId p : plan) EXPECT_EQ(p % 2, 0u);
  EXPECT_EQ(pf.matches(), 1u);
}

TEST(PatternAware, MatchSkipsAlreadyResidentPatternPages) {
  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme2));
  TestView view(1000);
  pf.on_chunk_evicted(0, stride2_pattern());
  view.add(0);
  view.add(2);
  EXPECT_EQ(pf.plan(4, view).size(), 6u);
}

// --- Fig 6 walkthrough -------------------------------------------------------
// Pattern: pages 1 and 3 of the chunk touched (plus nothing else).
// Stream (1): fault on page 2 -> mismatch -> whole chunk, entry deleted
//             under BOTH schemes (it was the first lookup).
// Stream (2): fault on page 1 -> match (prefetch 1 and 3); then fault on
//             page 2 -> mismatch -> rest of chunk; Scheme-1 deletes the
//             entry, Scheme-2 keeps it (first lookup matched).
TouchBits fig6_pattern() {
  TouchBits t;
  t.set(1);
  t.set(3);
  return t;
}

TEST(PatternAware, Fig6Stream1DeletesUnderBothSchemes) {
  for (DeletionScheme s : {DeletionScheme::kScheme1, DeletionScheme::kScheme2}) {
    PatternAwarePrefetcher pf(with_scheme(s));
    TestView view(1000);
    pf.on_chunk_evicted(0, fig6_pattern());
    const auto plan = pf.plan(2, view);  // 80002: mismatch
    EXPECT_EQ(plan.size(), kChunkPages);
    EXPECT_FALSE(pf.has_pattern(0));
    EXPECT_EQ(pf.deletions(), 1u);
  }
}

TEST(PatternAware, Fig6Stream2Scheme1Deletes) {
  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme1));
  TestView view(1000);
  pf.on_chunk_evicted(0, fig6_pattern());

  auto plan = pf.plan(1, view);  // 80001: match
  EXPECT_EQ(plan.size(), 2u);    // pages 1 and 3
  for (PageId p : plan) view.add(p);

  plan = pf.plan(2, view);       // 80002: mismatch
  // Whole chunk except the already-resident pages 1 and 3.
  EXPECT_EQ(plan.size(), kChunkPages - 2);
  EXPECT_FALSE(pf.has_pattern(0));  // Scheme-1: any mismatch deletes
}

TEST(PatternAware, Fig6Stream2Scheme2Keeps) {
  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme2));
  TestView view(1000);
  pf.on_chunk_evicted(0, fig6_pattern());

  auto plan = pf.plan(1, view);  // first lookup: match
  EXPECT_EQ(plan.size(), 2u);
  for (PageId p : plan) view.add(p);

  plan = pf.plan(2, view);       // later mismatch
  EXPECT_EQ(plan.size(), kChunkPages - 2);
  EXPECT_TRUE(pf.has_pattern(0));  // Scheme-2: kept, first lookup matched
}

TEST(PatternAware, ReRecordingResetsFirstLookupFlag) {
  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme2));
  TestView view(1000);
  pf.on_chunk_evicted(0, fig6_pattern());
  (void)pf.plan(1, view);               // probe once (match)
  pf.on_chunk_evicted(0, fig6_pattern());  // re-evicted, re-recorded
  (void)pf.plan(2, view);               // mismatch on the NEW first lookup
  EXPECT_FALSE(pf.has_pattern(0));
}

TEST(PatternAware, TracksPeakBufferSize) {
  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme2));
  for (ChunkId c = 0; c < 30; ++c) pf.on_chunk_evicted(c, stride2_pattern());
  EXPECT_EQ(pf.size(), 30u);
  EXPECT_EQ(pf.peak_size(), 30u);
}

PolicyConfig with_capacity(u32 entries) {
  PolicyConfig cfg;
  cfg.deletion = DeletionScheme::kScheme2;
  cfg.pattern_buffer_entries = entries;
  return cfg;
}

// Regression: the buffer used to grow without bound. §VI-C sizes it as a
// small fixed structure; overflow must replace the oldest recording, and
// deterministically so.
TEST(PatternAware, CapacityBoundsBufferWithFifoReplacement) {
  PatternAwarePrefetcher pf(with_capacity(4));
  EXPECT_EQ(pf.capacity(), 4u);
  for (ChunkId c = 0; c < 4; ++c) pf.on_chunk_evicted(c, stride2_pattern());
  EXPECT_EQ(pf.size(), 4u);
  EXPECT_DOUBLE_EQ(pf.occupancy(), 1.0);
  EXPECT_EQ(pf.oldest_entry(), 0u);

  pf.on_chunk_evicted(100, stride2_pattern());  // evicts chunk 0 (oldest)
  EXPECT_EQ(pf.size(), 4u);
  EXPECT_FALSE(pf.has_pattern(0));
  EXPECT_TRUE(pf.has_pattern(1));
  EXPECT_TRUE(pf.has_pattern(100));
  EXPECT_EQ(pf.oldest_entry(), 1u);
  EXPECT_EQ(pf.capacity_evictions(), 1u);
  EXPECT_EQ(pf.peak_size(), 4u);  // never exceeded the cap
}

TEST(PatternAware, ReRecordingKeepsFifoAge) {
  PatternAwarePrefetcher pf(with_capacity(3));
  for (ChunkId c = 0; c < 3; ++c) pf.on_chunk_evicted(c, stride2_pattern());
  // Re-record the oldest entry: pattern refreshes, FIFO position does not.
  pf.on_chunk_evicted(0, fig6_pattern());
  EXPECT_EQ(pf.size(), 3u);
  EXPECT_EQ(pf.capacity_evictions(), 0u);
  EXPECT_EQ(pf.oldest_entry(), 0u);
  pf.on_chunk_evicted(9, stride2_pattern());  // chunk 0 is still first out
  EXPECT_FALSE(pf.has_pattern(0));
  EXPECT_EQ(pf.oldest_entry(), 1u);
}

TEST(PatternAware, SchemeDeletionFreesCapacitySlot) {
  PatternAwarePrefetcher pf(with_capacity(2));
  TestView view(1000);
  pf.on_chunk_evicted(0, stride2_pattern());
  pf.on_chunk_evicted(1, stride2_pattern());
  (void)pf.plan(first_page_of_chunk(0) + 1, view);  // page 1: Scheme-2 first miss
  EXPECT_FALSE(pf.has_pattern(0));
  EXPECT_EQ(pf.size(), 1u);
  EXPECT_EQ(pf.oldest_entry(), 1u);
  // The freed slot is reusable without a capacity eviction.
  pf.on_chunk_evicted(5, stride2_pattern());
  EXPECT_EQ(pf.size(), 2u);
  EXPECT_EQ(pf.capacity_evictions(), 0u);
}

TEST(PatternAware, ZeroConfiguredCapacityClampsToOne) {
  PatternAwarePrefetcher pf(with_capacity(0));
  EXPECT_EQ(pf.capacity(), 1u);
  pf.on_chunk_evicted(0, stride2_pattern());
  pf.on_chunk_evicted(1, stride2_pattern());
  EXPECT_EQ(pf.size(), 1u);
  EXPECT_TRUE(pf.has_pattern(1));
  EXPECT_EQ(pf.capacity_evictions(), 1u);
}

// A pattern match whose pages are all already resident plans nothing. That
// outcome used to be folded into matches(), inflating the §VI-C match rate
// with lookups that narrowed no migration; it is now its own counter and
// trace event. Only reachable by calling plan() for a resident page (the
// integrated fault path filters those), which is why integrated traces
// never carry kPatternHitEmpty (tests/integration/trace_determinism_test.cpp
// asserts its absence there).
TEST(PatternAware, FullyResidentMatchCountsAsEmptyHitNotMatch) {
  EventQueue eq;
  FlightRecorder rec(eq);
  RingSink ring(16);
  rec.add_sink(&ring);

  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme2));
  pf.set_recorder(&rec);
  TestView view(1000);
  pf.on_chunk_evicted(0, fig6_pattern());
  view.add(1);
  view.add(3);  // every patterned page already resident

  const auto plan = pf.plan(1, view);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(pf.empty_hits(), 1u);
  EXPECT_EQ(pf.matches(), 0u);
  EXPECT_EQ(pf.mismatches(), 0u);
  EXPECT_TRUE(pf.has_pattern(0));  // an empty hit is a hit: entry survives

  const auto events = ring.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventType::kPatternHitEmpty);
  EXPECT_EQ(events[0].a, 0u);                      // chunk
  EXPECT_EQ(events[0].b, fig6_pattern().count());  // pattern popcount

  // The next lookup's outcome is unaffected by the empty hit.
  view.remove(3);
  EXPECT_EQ(pf.plan(1, view).size(), 1u);
  EXPECT_EQ(pf.matches(), 1u);
}

TEST(PatternAware, PlanNeverExceedsFootprint) {
  PatternAwarePrefetcher pf(with_scheme(DeletionScheme::kScheme2));
  TestView view(10);  // footprint ends inside chunk 0
  pf.on_chunk_evicted(0, stride2_pattern());
  for (PageId p : pf.plan(4, view)) EXPECT_LT(p, 10u);
}

}  // namespace
}  // namespace uvmsim
