// Parameterized property suite run against EVERY registered prefetcher:
// whatever the residency state, a plan must stay inside the footprint,
// never include resident pages, never contain duplicates, and (together
// with the driver's guarantee) cover the faulted page when it is plannable.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "core/policy_factory.hpp"
#include "prefetch/prefetcher.hpp"

namespace uvmsim {
namespace {

class RandomView final : public ResidencyView {
 public:
  RandomView(PageId footprint, double resident_fraction, u64 seed)
      : footprint_(footprint) {
    Xoshiro256 rng(seed);
    for (PageId p = 0; p < footprint; ++p)
      if (rng.chance(resident_fraction)) resident_.insert(p);
  }
  void make_faultable(PageId p) { resident_.erase(p); }
  [[nodiscard]] bool is_resident(PageId p) const override { return resident_.contains(p); }
  [[nodiscard]] PageId footprint_pages() const override { return footprint_; }

 private:
  std::set<PageId> resident_;
  PageId footprint_;
};

class EveryPrefetcher : public ::testing::TestWithParam<PrefetchKind> {
 protected:
  std::unique_ptr<Prefetcher> make() {
    PolicyConfig cfg;
    cfg.prefetch = GetParam();
    auto pf = make_prefetcher(cfg);
    // Seed the pattern buffer so the pattern-aware prefetcher's hit path is
    // exercised too, with a stride-2 pattern on every chunk.
    TouchBits stride2;
    for (u32 i = 0; i < kChunkPages; i += 2) stride2.set(i);
    for (ChunkId c = 0; c < 64; ++c) pf->on_chunk_evicted(c, stride2);
    return pf;
  }
};

INSTANTIATE_TEST_SUITE_P(AllKinds, EveryPrefetcher,
                         ::testing::Values(PrefetchKind::kNone,
                                           PrefetchKind::kLocality,
                                           PrefetchKind::kTreeNeighborhood,
                                           PrefetchKind::kPatternAware),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case PrefetchKind::kNone: return "none";
                             case PrefetchKind::kLocality: return "locality";
                             case PrefetchKind::kTreeNeighborhood: return "tree";
                             case PrefetchKind::kPatternAware: return "pattern";
                           }
                           return "other";
                         });

TEST_P(EveryPrefetcher, PlansAreWellFormedAcrossResidencyStates) {
  auto pf = make();
  for (double frac : {0.0, 0.3, 0.9}) {
    RandomView view(1000, frac, 42);
    Xoshiro256 rng(7);
    for (int trial = 0; trial < 50; ++trial) {
      const PageId faulted = rng.below(1000);
      view.make_faultable(faulted);
      const auto plan = pf->plan(faulted, view);
      std::set<PageId> seen;
      for (PageId p : plan) {
        ASSERT_LT(p, 1000u) << "out of footprint";
        ASSERT_FALSE(view.is_resident(p)) << "planned a resident page";
        ASSERT_TRUE(seen.insert(p).second) << "duplicate page in plan";
      }
      ASSERT_FALSE(plan.empty());
    }
  }
}

TEST_P(EveryPrefetcher, FaultedPageIsPlannedWhenNonResident) {
  auto pf = make();
  RandomView view(1000, 0.5, 9);
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const PageId faulted = rng.below(1000);
    view.make_faultable(faulted);
    const auto plan = pf->plan(faulted, view);
    // The pattern-aware prefetcher may legitimately omit a mismatching
    // faulted page only when its pattern says so — but our seeded patterns
    // cover even indices, and the driver re-adds the faulted page anyway.
    if (GetParam() != PrefetchKind::kPatternAware ||
        page_index_in_chunk(faulted) % 2 == 0) {
      EXPECT_NE(std::find(plan.begin(), plan.end(), faulted), plan.end());
    }
  }
}

TEST_P(EveryPrefetcher, TinyFootprintNeverOverflows) {
  auto pf = make();
  RandomView view(5, 0.0, 1);  // footprint smaller than one chunk
  const auto plan = pf->plan(2, view);
  for (PageId p : plan) EXPECT_LT(p, 5u);
  EXPECT_LE(plan.size(), 5u);
}

}  // namespace
}  // namespace uvmsim
