// PolicyRegistry: named factories behind make_eviction_policy /
// make_prefetcher. Round-trip guarantees (every built-in name constructs
// exactly what the old enum switches did), loud failure on unknown names
// and out-of-range enums (which used to come back as a nullptr the callers
// dereferenced), duplicate-registration rejection, and the out-of-tree
// registration path.
#include "core/policy_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/policy_factory.hpp"
#include "core/uvm_system.hpp"
#include "policy/adaptive.hpp"
#include "policy/lru.hpp"
#include "policy/mhpe.hpp"
#include "prefetch/adaptive.hpp"
#include "prefetch/pattern_aware.hpp"
#include "workloads/patterns.hpp"

namespace uvmsim {
namespace {

TEST(PolicyRegistry, EveryBuiltInEvictionNameResolves) {
  auto& reg = PolicyRegistry::instance();
  ChunkChain chain;
  PolicyConfig cfg;
  for (const char* name :
       {"lru", "fifo", "random", "reserved", "hpe", "mhpe", "adaptive"}) {
    ASSERT_TRUE(reg.has_eviction(name)) << name;
    auto pol = reg.make_eviction(name, cfg, chain);
    ASSERT_NE(pol, nullptr) << name;
    EXPECT_FALSE(pol->name().empty()) << name;
  }
}

TEST(PolicyRegistry, EveryBuiltInPrefetchNameResolves) {
  auto& reg = PolicyRegistry::instance();
  PolicyConfig cfg;
  for (const char* name : {"none", "locality", "tree", "pattern", "adaptive"}) {
    ASSERT_TRUE(reg.has_prefetch(name)) << name;
    auto pf = reg.make_prefetch(name, cfg);
    ASSERT_NE(pf, nullptr) << name;
  }
}

TEST(PolicyRegistry, BuiltInsListInRegistrationOrder) {
  // Built-ins are seeded before anything else can register, so they lead
  // the listing in enum order — the order --list-policies prints.
  const auto ev = PolicyRegistry::instance().eviction_names();
  ASSERT_GE(ev.size(), 7u);
  EXPECT_EQ(ev[0], "lru");
  EXPECT_EQ(ev[5], "mhpe");
  EXPECT_EQ(ev[6], "adaptive");
  const auto pf = PolicyRegistry::instance().prefetch_names();
  ASSERT_GE(pf.size(), 5u);
  EXPECT_EQ(pf[0], "none");
  EXPECT_EQ(pf[3], "pattern");
  EXPECT_EQ(pf[4], "adaptive");
}

TEST(PolicyRegistry, EnumConfigsDeriveTheirCanonicalKey) {
  PolicyConfig cfg;
  cfg.eviction = EvictionKind::kMhpe;
  cfg.prefetch = PrefetchKind::kPatternAware;
  EXPECT_EQ(eviction_key(cfg), "mhpe");
  EXPECT_EQ(prefetch_key(cfg), "pattern");
  // An explicit name wins over the enum.
  cfg.eviction_name = "lru";
  cfg.prefetch_name = "none";
  EXPECT_EQ(eviction_key(cfg), "lru");
  EXPECT_EQ(prefetch_key(cfg), "none");
}

TEST(PolicyRegistry, NamePathBuildsSameTypesAsEnumPath) {
  ChunkChain chain;
  PolicyConfig by_enum = presets::cppe();
  auto enum_pol = make_eviction_policy(by_enum, chain);
  auto enum_pf = make_prefetcher(by_enum);

  PolicyConfig by_name;
  by_name.eviction_name = "mhpe";
  by_name.prefetch_name = "pattern";
  auto name_pol = make_eviction_policy(by_name, chain);
  auto name_pf = make_prefetcher(by_name);

  EXPECT_NE(dynamic_cast<MhpePolicy*>(enum_pol.get()), nullptr);
  EXPECT_NE(dynamic_cast<MhpePolicy*>(name_pol.get()), nullptr);
  EXPECT_NE(dynamic_cast<PatternAwarePrefetcher*>(name_pf.get()), nullptr);
  EXPECT_EQ(enum_pol->name(), name_pol->name());
  EXPECT_EQ(enum_pf->name(), name_pf->name());
}

/// Full-system equivalence: a run configured by name must be cycle- and
/// traffic-identical to the same run configured by enum — the registry
/// rewire's behaviour-preservation contract.
RunResult run_small(const PolicyConfig& pol) {
  StridedWorkload wl("nw-ish", "NWI", 1024, 2, 4.0);
  UvmSystem sys(SystemConfig{}, pol, wl, 0.5);
  return sys.run();
}

TEST(PolicyRegistry, NameRunMatchesEnumRunForCppe) {
  const RunResult a = run_small(presets::cppe());
  PolicyConfig named = presets::cppe();
  named.eviction_name = "mhpe";
  named.prefetch_name = "pattern";
  const RunResult b = run_small(named);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.driver.page_faults, b.driver.page_faults);
  EXPECT_EQ(a.h2d_pages, b.h2d_pages);
  EXPECT_EQ(a.d2h_pages, b.d2h_pages);
  EXPECT_EQ(a.final_chain_length, b.final_chain_length);
}

TEST(PolicyRegistry, NameRunMatchesEnumRunForBaseline) {
  const RunResult a = run_small(presets::baseline());
  PolicyConfig named = presets::baseline();
  named.eviction_name = "lru";
  named.prefetch_name = "locality";
  const RunResult b = run_small(named);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.driver.page_faults, b.driver.page_faults);
  EXPECT_EQ(a.h2d_pages, b.h2d_pages);
  EXPECT_EQ(a.d2h_pages, b.d2h_pages);
}

TEST(PolicyRegistry, UnknownNameThrowsListingRegisteredNames) {
  ChunkChain chain;
  PolicyConfig cfg;
  auto& reg = PolicyRegistry::instance();
  try {
    (void)reg.make_eviction("nosuch", cfg, chain);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nosuch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mhpe"), std::string::npos) << msg;
  }
  try {
    (void)reg.make_prefetch("nosuch", cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("pattern"), std::string::npos) << msg;
  }
}

// Regression: an out-of-range enum used to fall out of the factory switch
// as nullptr and crash at the first use site. It now degrades to an
// unregistered "enum(N)" key, so the lookup throws the same loud error as
// any unknown name.
TEST(PolicyRegistry, OutOfRangeEnumThrowsInsteadOfReturningNull) {
  ChunkChain chain;
  PolicyConfig cfg;
  cfg.eviction = static_cast<EvictionKind>(99);
  EXPECT_THROW((void)make_eviction_policy(cfg, chain), std::invalid_argument);
  PolicyConfig pcfg;
  pcfg.prefetch = static_cast<PrefetchKind>(99);
  EXPECT_THROW((void)make_prefetcher(pcfg), std::invalid_argument);
}

TEST(PolicyRegistry, DuplicateOrEmptyRegistrationThrows) {
  auto& reg = PolicyRegistry::instance();
  EXPECT_THROW(reg.register_eviction(
                   "lru",
                   [](const PolicyConfig&, ChunkChain& chain) {
                     return std::make_unique<LruPolicy>(chain);
                   }),
               std::logic_error);
  EXPECT_THROW(reg.register_eviction(
                   "",
                   [](const PolicyConfig&, ChunkChain& chain) {
                     return std::make_unique<LruPolicy>(chain);
                   }),
               std::logic_error);
  EXPECT_THROW(reg.register_prefetch(
                   "pattern",
                   [](const PolicyConfig& cfg) {
                     return std::make_unique<PatternAwarePrefetcher>(cfg);
                   }),
               std::logic_error);
}

TEST(PolicyRegistry, OutOfTreeRegistrationResolvesThroughConfig) {
  auto& reg = PolicyRegistry::instance();
  ASSERT_FALSE(reg.has_eviction("testonly-lru-twin"));
  reg.register_eviction("testonly-lru-twin",
                        [](const PolicyConfig&, ChunkChain& chain) {
                          return std::make_unique<LruPolicy>(chain);
                        });
  EXPECT_TRUE(reg.has_eviction("testonly-lru-twin"));
  const auto names = reg.eviction_names();
  EXPECT_EQ(names.back(), "testonly-lru-twin");  // appended, built-ins first

  ChunkChain chain;
  PolicyConfig cfg;
  cfg.eviction_name = "testonly-lru-twin";
  auto pol = make_eviction_policy(cfg, chain);
  EXPECT_NE(dynamic_cast<LruPolicy*>(pol.get()), nullptr);
}

TEST(PolicyRegistry, AdaptiveNamesBuildTheAdaptivePair) {
  ChunkChain chain;
  PolicyConfig cfg;
  cfg.eviction_name = "adaptive";
  cfg.prefetch_name = "adaptive";
  auto pol = make_eviction_policy(cfg, chain);
  auto pf = make_prefetcher(cfg);
  EXPECT_NE(dynamic_cast<AdaptiveEvictionPolicy*>(pol.get()), nullptr);
  EXPECT_NE(dynamic_cast<AdaptivePrefetcher*>(pf.get()), nullptr);
}

// End-to-end smoke: an oversubscribed run under the adaptive pair completes
// and surfaces its introspection in RunResult.
TEST(PolicyRegistry, AdaptiveSystemRunCompletes) {
  PolicyConfig cfg;
  cfg.eviction_name = "adaptive";
  cfg.prefetch_name = "adaptive";
  ThrashingWorkload wl("thrash", "TH", 1024, 3.0);
  UvmSystem sys(SystemConfig{}, cfg, wl, 0.5);
  const RunResult r = sys.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.adaptive_used);
  EXPECT_EQ(r.eviction_name, "adaptive");
  EXPECT_EQ(r.prefetcher_name, "adaptive");
  EXPECT_GT(r.driver.page_faults, 0u);
}

}  // namespace
}  // namespace uvmsim
