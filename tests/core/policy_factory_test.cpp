#include "core/policy_factory.hpp"

#include <gtest/gtest.h>

#include "policy/mhpe.hpp"
#include "prefetch/pattern_aware.hpp"

namespace uvmsim {
namespace {

TEST(PolicyFactory, BuildsEveryEvictionKind) {
  ChunkChain chain;
  for (EvictionKind k : {EvictionKind::kLru, EvictionKind::kFifo,
                         EvictionKind::kRandom, EvictionKind::kReservedLru,
                         EvictionKind::kHpe, EvictionKind::kMhpe}) {
    PolicyConfig cfg;
    cfg.eviction = k;
    auto pol = make_eviction_policy(cfg, chain);
    ASSERT_NE(pol, nullptr) << to_string(k);
    EXPECT_FALSE(pol->name().empty());
  }
}

TEST(PolicyFactory, BuildsEveryPrefetchKind) {
  for (PrefetchKind k : {PrefetchKind::kNone, PrefetchKind::kLocality,
                         PrefetchKind::kTreeNeighborhood,
                         PrefetchKind::kPatternAware}) {
    PolicyConfig cfg;
    cfg.prefetch = k;
    auto pf = make_prefetcher(cfg);
    ASSERT_NE(pf, nullptr) << to_string(k);
  }
}

TEST(Presets, BaselineIsLruPlusLocality) {
  const PolicyConfig c = presets::baseline();
  EXPECT_EQ(c.eviction, EvictionKind::kLru);
  EXPECT_EQ(c.prefetch, PrefetchKind::kLocality);
  EXPECT_TRUE(c.prefetch_when_full);
}

TEST(Presets, CppeIsMhpePlusPatternAwareScheme2) {
  const PolicyConfig c = presets::cppe();
  EXPECT_EQ(c.eviction, EvictionKind::kMhpe);
  EXPECT_EQ(c.prefetch, PrefetchKind::kPatternAware);
  EXPECT_EQ(c.deletion, DeletionScheme::kScheme2);
  // Paper thresholds (§VI-A).
  EXPECT_EQ(c.t1_untouch, 32u);
  EXPECT_EQ(c.t2_untouch_first4, 40u);
  EXPECT_EQ(c.t3_forward_limit, 32u);
  EXPECT_EQ(c.interval_faults, 64u);
}

TEST(Presets, Scheme1VariantDiffersOnlyInDeletion) {
  const PolicyConfig a = presets::cppe(), b = presets::cppe_scheme1();
  EXPECT_EQ(b.deletion, DeletionScheme::kScheme1);
  EXPECT_EQ(a.eviction, b.eviction);
  EXPECT_EQ(a.prefetch, b.prefetch);
}

TEST(Presets, ReservedLruCarriesFraction) {
  EXPECT_DOUBLE_EQ(presets::reserved_lru(0.1).reserved_fraction, 0.1);
  EXPECT_EQ(presets::reserved_lru(0.2).eviction, EvictionKind::kReservedLru);
}

TEST(Presets, DisablePrefetchTogglesGate) {
  EXPECT_FALSE(presets::disable_prefetch_when_full().prefetch_when_full);
}

TEST(Presets, FactoryRoundTripsCppe) {
  ChunkChain chain;
  const PolicyConfig cfg = presets::cppe();
  auto pol = make_eviction_policy(cfg, chain);
  auto pf = make_prefetcher(cfg);
  EXPECT_NE(dynamic_cast<MhpePolicy*>(pol.get()), nullptr);
  EXPECT_NE(dynamic_cast<PatternAwarePrefetcher*>(pf.get()), nullptr);
}

}  // namespace
}  // namespace uvmsim
