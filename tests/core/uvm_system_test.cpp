// UvmSystem facade behaviour that the integration suite doesn't cover:
// cycle caps, result field population, and data-cache accounting.
#include "core/uvm_system.hpp"

#include <gtest/gtest.h>

#include "core/policy_factory.hpp"
#include "workloads/benchmarks.hpp"

namespace uvmsim {
namespace {

TEST(UvmSystemTest, CycleCapMarksRunIncomplete) {
  const auto wl = make_benchmark("STN");
  UvmSystem sys(SystemConfig{}, presets::baseline(), *wl, 0.5);
  const RunResult r = sys.run(/*max_cycles=*/1000);
  EXPECT_FALSE(r.completed);
  EXPECT_LE(r.cycles, 1000u + 1);
}

TEST(UvmSystemTest, ResultIdentifiesConfiguration) {
  const auto wl = make_benchmark("NW");
  UvmSystem sys(SystemConfig{}, presets::cppe(), *wl, 0.75);
  const RunResult r = sys.run();
  EXPECT_EQ(r.workload, "NW");
  EXPECT_EQ(r.eviction_name, "MHPE");
  EXPECT_EQ(r.prefetcher_name, "pattern-aware/s2");
  EXPECT_DOUBLE_EQ(r.oversub, 0.75);
  EXPECT_EQ(r.footprint_pages, wl->footprint_pages());
  EXPECT_EQ(r.capacity_pages,
            static_cast<u64>(0.75 * static_cast<double>(wl->footprint_pages()) + 0.999));
}

TEST(UvmSystemTest, NonMhpePolicyLeavesMhpeFieldsUnset) {
  const auto wl = make_benchmark("HOT");
  UvmSystem sys(SystemConfig{}, presets::baseline(), *wl, 0.5);
  const RunResult r = sys.run();
  EXPECT_FALSE(r.mhpe_used);
  EXPECT_TRUE(r.untouch_history.empty());
  EXPECT_EQ(r.pattern_buffer_peak, 0u);
}

TEST(UvmSystemTest, DataCacheAccountingCoversEveryAccess) {
  SystemConfig cfg;
  cfg.num_sms = 4;
  const auto wl = make_benchmark("STN");
  UvmSystem sys(cfg, presets::baseline(), *wl, 0.5);
  const RunResult r = sys.run();
  const auto& g = r.gpu;
  // Every access goes through the L1D exactly once after translation.
  EXPECT_EQ(g.l1d_hits + g.l1d_misses, g.accesses);
  // L2 sees exactly the L1D misses.
  EXPECT_EQ(g.l2c_hits + g.l2c_misses, g.l1d_misses);
  EXPECT_GT(g.l1d_hits, 0u);  // acc_per_page = 2 guarantees some reuse
}

TEST(UvmSystemTest, SpeedupVsIsSymmetricInverse) {
  const auto wl = make_benchmark("HOT");
  UvmSystem a(SystemConfig{}, presets::baseline(), *wl, 0.5);
  UvmSystem b(SystemConfig{}, presets::cppe(), *wl, 0.5);
  const RunResult ra = a.run(), rb = b.run();
  EXPECT_NEAR(ra.speedup_vs(rb) * rb.speedup_vs(ra), 1.0, 1e-9);
}

TEST(UvmSystemTest, SeedChangesChangeRandomisedRuns) {
  const auto wl = make_benchmark("B+T");  // random region draws
  PolicyConfig p1 = presets::cppe(), p2 = presets::cppe();
  p2.seed = p1.seed + 1;
  UvmSystem a(SystemConfig{}, p1, *wl, 0.5);
  UvmSystem b(SystemConfig{}, p2, *wl, 0.5);
  EXPECT_NE(a.run().cycles, b.run().cycles);
}

}  // namespace
}  // namespace uvmsim
