#include "tlb/page_table.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(PageTable, MapUnmapRoundTrip) {
  PageTable pt;
  EXPECT_FALSE(pt.resident(7));
  pt.map(7, 123);
  EXPECT_TRUE(pt.resident(7));
  EXPECT_EQ(pt.frame_of(7), 123u);
  EXPECT_EQ(pt.unmap(7), 123u);
  EXPECT_FALSE(pt.resident(7));
}

TEST(PageTable, FrameOfMissingIsInvalid) {
  PageTable pt;
  EXPECT_EQ(pt.frame_of(99), kInvalidFrame);
}

TEST(PageTable, CountsMappedPages) {
  PageTable pt;
  for (PageId p = 0; p < 10; ++p) pt.map(p, p);
  EXPECT_EQ(pt.mapped_pages(), 10u);
  pt.unmap(3);
  EXPECT_EQ(pt.mapped_pages(), 9u);
}

TEST(PageTable, NodeTagsShareUpperLevels) {
  // Pages in the same 512-page leaf region share the level-1..3 nodes but
  // have distinct level-0 (PTE-level) tags only when 512 pages apart.
  const PageId a = 0, b = 1, c = 512;
  EXPECT_EQ(PageTable::node_tag(a, 1), PageTable::node_tag(b, 1));
  EXPECT_EQ(PageTable::node_tag(a, 3), PageTable::node_tag(c, 3));
  EXPECT_NE(PageTable::node_tag(a, 1), PageTable::node_tag(c, 1));
}

TEST(PageTable, NodeTagsNeverAliasAcrossLevels) {
  // The level is encoded in the tag: the same VPN prefix at different levels
  // must produce different tags.
  for (PageId p : {PageId{0}, PageId{12345}, PageId{1} << 30}) {
    for (u32 l1 = 0; l1 < PageTable::kLevels; ++l1)
      for (u32 l2 = l1 + 1; l2 < PageTable::kLevels; ++l2)
        EXPECT_NE(PageTable::node_tag(p, l1), PageTable::node_tag(p, l2));
  }
}

}  // namespace
}  // namespace uvmsim
