#include "tlb/walker.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

struct WalkerFixture : ::testing::Test {
  EventQueue eq;
  PageTable pt;
  SystemConfig cfg;
};

TEST_F(WalkerFixture, WalkFindsResidentPage) {
  pt.map(5, 0);
  PageWalker w(eq, pt, cfg);
  bool called = false;
  w.walk(5, [&](PageId p, bool resident) {
    called = true;
    EXPECT_EQ(p, 5u);
    EXPECT_TRUE(resident);
  });
  eq.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(w.walks_performed(), 1u);
}

TEST_F(WalkerFixture, WalkReportsFault) {
  PageWalker w(eq, pt, cfg);
  bool resident = true;
  w.walk(5, [&](PageId, bool r) { resident = r; });
  eq.run();
  EXPECT_FALSE(resident);
}

TEST_F(WalkerFixture, ColdWalkIsSlowerThanWarmWalk) {
  pt.map(5, 0);
  pt.map(6, 1);
  PageWalker w(eq, pt, cfg);
  Cycle first = 0, second = 0;
  w.walk(5, [&](PageId, bool) { first = eq.now(); });
  eq.run();
  const Cycle start2 = eq.now();
  w.walk(6, [&](PageId, bool) { second = eq.now(); });
  eq.run();
  // Page 6 shares all upper-level nodes with page 5 -> mostly PWC hits.
  EXPECT_LT(second - start2, first);
  EXPECT_GT(w.pwc_hits(), 0u);
}

TEST_F(WalkerFixture, ConcurrentWalksToSamePageCoalesce) {
  pt.map(7, 0);
  PageWalker w(eq, pt, cfg);
  int done = 0;
  for (int i = 0; i < 5; ++i)
    w.walk(7, [&](PageId, bool) { ++done; });
  eq.run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(w.walks_performed(), 1u);
  EXPECT_EQ(w.walks_coalesced(), 4u);
  EXPECT_EQ(w.walks_requested(), 5u);
}

TEST_F(WalkerFixture, ThreadLimitQueuesExcessWalks) {
  cfg.walker_threads = 2;
  PageWalker w(eq, pt, cfg);
  int done = 0;
  for (PageId p = 0; p < 10; ++p)
    w.walk(p * 100000, [&](PageId, bool) { ++done; });  // distinct, PWC-cold
  EXPECT_EQ(w.active_walks(), 2u);
  EXPECT_GT(w.peak_queue_depth(), 0u);
  eq.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(w.walks_performed(), 10u);
  EXPECT_EQ(w.active_walks(), 0u);
}

TEST_F(WalkerFixture, WalkLatencyIsFourLevelBounded) {
  PageWalker w(eq, pt, cfg);
  Cycle done_at = 0;
  w.walk(0, [&](PageId, bool) { done_at = eq.now(); });
  eq.run();
  // All four levels PWC-cold: latency = 4 * walk_memory_latency.
  EXPECT_EQ(done_at, 4 * cfg.walk_memory_latency);
}

}  // namespace
}  // namespace uvmsim
