#include "tlb/tlb.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(Tlb, MissThenFillThenHit) {
  Tlb tlb("t", 8, 0, 1);
  EXPECT_FALSE(tlb.lookup(0, 5).hit);
  tlb.fill(5);
  EXPECT_TRUE(tlb.lookup(10, 5).hit);
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LatencyIsCharged) {
  Tlb tlb("t", 8, 0, 10);
  const auto r = tlb.lookup(100, 1);
  EXPECT_EQ(r.ready_at, 110u);  // starts at 100, 10-cycle access
}

TEST(Tlb, SinglePortSerialises) {
  Tlb tlb("t", 8, 0, 1, /*ports=*/1);
  const auto a = tlb.lookup(0, 1);
  const auto b = tlb.lookup(0, 2);  // same cycle: must queue behind a
  EXPECT_GT(b.ready_at, a.ready_at);
}

TEST(Tlb, TwoPortsServeTwoPerCycle) {
  Tlb tlb("t", 8, 0, 10, /*ports=*/2);
  const auto a = tlb.lookup(0, 1);
  const auto b = tlb.lookup(0, 2);
  const auto c = tlb.lookup(0, 3);
  EXPECT_EQ(a.ready_at, b.ready_at);  // parallel ports
  EXPECT_GT(c.ready_at, b.ready_at);  // third lookup queues
}

TEST(Tlb, InvalidateRemovesTranslation) {
  Tlb tlb("t", 8, 0, 1);
  tlb.fill(9);
  EXPECT_TRUE(tlb.invalidate(9));
  EXPECT_FALSE(tlb.lookup(0, 9).hit);
  EXPECT_FALSE(tlb.invalidate(9));
}

TEST(Tlb, CapacityEviction) {
  Tlb tlb("t", 4, 0, 1);  // fully associative, 4 entries
  for (PageId p = 0; p < 5; ++p) tlb.fill(p);
  u32 hits = 0;
  for (PageId p = 0; p < 5; ++p)
    if (tlb.lookup(100, p).hit) ++hits;
  EXPECT_EQ(hits, 4u);  // exactly one got evicted
}

TEST(Tlb, HitRate) {
  Tlb tlb("t", 8, 0, 1);
  tlb.fill(1);
  tlb.lookup(0, 1);
  tlb.lookup(0, 2);
  EXPECT_DOUBLE_EQ(tlb.hit_rate(), 0.5);
}

// --- 2 MB-entry sub-array (large-pages mode; docs/memory.md) ---------------

TEST(Tlb, LargeSubArrayOffByDefault) {
  Tlb tlb("t", 8, 0, 1);
  EXPECT_FALSE(tlb.large_enabled());
  tlb.fill_large(0);                      // silently ignored when off
  EXPECT_FALSE(tlb.invalidate_large(0));
  EXPECT_FALSE(tlb.lookup(0, 3).hit);
  EXPECT_EQ(tlb.large_hits(), 0u);
}

TEST(Tlb, OneLargeEntryCoversWholeRegion) {
  Tlb tlb("t", 8, 0, 1);
  tlb.configure_large(4);
  tlb.fill_large(large_of_page(0));
  // Every page of region 0 hits on the single large entry...
  const auto a = tlb.lookup(0, 0);
  const auto b = tlb.lookup(10, kLargePages - 1);
  EXPECT_TRUE(a.hit && a.large);
  EXPECT_TRUE(b.hit && b.large);
  // ...and the first page of region 1 does not.
  EXPECT_FALSE(tlb.lookup(20, kLargePages).hit);
  EXPECT_EQ(tlb.large_hits(), 2u);
  EXPECT_EQ(tlb.hits(), 2u);  // large hits count as hits in the totals
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LargeHitShortCircuitsPerPageArray) {
  Tlb tlb("t", 2, 0, 1);  // tiny per-page array
  tlb.configure_large(4);
  tlb.fill_large(0);
  // Probe many distinct pages of region 0: all large hits, and none of them
  // installs or disturbs per-page entries (the small array stays warm).
  tlb.fill(5 * kLargePages);
  tlb.fill(5 * kLargePages + 1);
  for (PageId p = 0; p < 64; ++p) EXPECT_TRUE(tlb.lookup(p, p).large);
  EXPECT_TRUE(tlb.lookup(100, 5 * kLargePages).hit);
  EXPECT_TRUE(tlb.lookup(100, 5 * kLargePages + 1).hit);
}

TEST(Tlb, InvalidateLargeDropsRegionButNotSmallEntries) {
  Tlb tlb("t", 8, 0, 1);
  tlb.configure_large(4);
  tlb.fill_large(0);
  tlb.fill(3);  // a stale-but-correct small entry for the same region
  EXPECT_TRUE(tlb.invalidate_large(0));
  EXPECT_FALSE(tlb.invalidate_large(0));
  // The 2 MB translation is gone; the per-page one survives the shootdown
  // (a pure splinter leaves frames in place, so small entries stay valid).
  const auto r = tlb.lookup(0, 3);
  EXPECT_TRUE(r.hit);
  EXPECT_FALSE(r.large);
  EXPECT_FALSE(tlb.lookup(10, 4).hit);
}

TEST(Tlb, LargeSubArrayHasItsOwnCapacity) {
  Tlb tlb("t", 8, 0, 1);
  tlb.configure_large(2);  // 2 large entries only
  for (LargeId l = 0; l < 3; ++l) tlb.fill_large(l);
  u32 hits = 0;
  for (LargeId l = 0; l < 3; ++l)
    if (tlb.lookup(100, first_page_of_large(l)).hit) ++hits;
  EXPECT_EQ(hits, 2u);  // one region fell out of the sub-array
}

}  // namespace
}  // namespace uvmsim
