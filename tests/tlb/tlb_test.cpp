#include "tlb/tlb.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(Tlb, MissThenFillThenHit) {
  Tlb tlb("t", 8, 0, 1);
  EXPECT_FALSE(tlb.lookup(0, 5).hit);
  tlb.fill(5);
  EXPECT_TRUE(tlb.lookup(10, 5).hit);
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LatencyIsCharged) {
  Tlb tlb("t", 8, 0, 10);
  const auto r = tlb.lookup(100, 1);
  EXPECT_EQ(r.ready_at, 110u);  // starts at 100, 10-cycle access
}

TEST(Tlb, SinglePortSerialises) {
  Tlb tlb("t", 8, 0, 1, /*ports=*/1);
  const auto a = tlb.lookup(0, 1);
  const auto b = tlb.lookup(0, 2);  // same cycle: must queue behind a
  EXPECT_GT(b.ready_at, a.ready_at);
}

TEST(Tlb, TwoPortsServeTwoPerCycle) {
  Tlb tlb("t", 8, 0, 10, /*ports=*/2);
  const auto a = tlb.lookup(0, 1);
  const auto b = tlb.lookup(0, 2);
  const auto c = tlb.lookup(0, 3);
  EXPECT_EQ(a.ready_at, b.ready_at);  // parallel ports
  EXPECT_GT(c.ready_at, b.ready_at);  // third lookup queues
}

TEST(Tlb, InvalidateRemovesTranslation) {
  Tlb tlb("t", 8, 0, 1);
  tlb.fill(9);
  EXPECT_TRUE(tlb.invalidate(9));
  EXPECT_FALSE(tlb.lookup(0, 9).hit);
  EXPECT_FALSE(tlb.invalidate(9));
}

TEST(Tlb, CapacityEviction) {
  Tlb tlb("t", 4, 0, 1);  // fully associative, 4 entries
  for (PageId p = 0; p < 5; ++p) tlb.fill(p);
  u32 hits = 0;
  for (PageId p = 0; p < 5; ++p)
    if (tlb.lookup(100, p).hit) ++hits;
  EXPECT_EQ(hits, 4u);  // exactly one got evicted
}

TEST(Tlb, HitRate) {
  Tlb tlb("t", 8, 0, 1);
  tlb.fill(1);
  tlb.lookup(0, 1);
  tlb.lookup(0, 2);
  EXPECT_DOUBLE_EQ(tlb.hit_rate(), 0.5);
}

}  // namespace
}  // namespace uvmsim
