// Parameterized property suite run against EVERY registered eviction
// policy: victims are always valid unpinned resident chunks, single-entry
// chains work, heavy pinning never produces a pinned victim, and repeated
// select/evict cycles drain a chain completely.
#include <gtest/gtest.h>

#include <set>

#include "core/policy_factory.hpp"
#include "policy/eviction_policy.hpp"

namespace uvmsim {
namespace {

class EveryPolicy : public ::testing::TestWithParam<EvictionKind> {
 protected:
  void fill(ChunkChain& chain, u32 n) {
    for (ChunkId c = 0; c < n; ++c) {
      ChunkEntry& e = chain.insert(c);
      e.resident = TouchBits::all();
      e.touched = (c % 3 == 0) ? TouchBits(0x000F) : TouchBits::all();
      e.hpe_counter = (c % 3 == 0) ? 4 : 16;
    }
  }

  std::unique_ptr<EvictionPolicy> make(ChunkChain& chain) {
    PolicyConfig cfg;
    cfg.eviction = GetParam();
    return make_eviction_policy(cfg, chain);
  }
};

INSTANTIATE_TEST_SUITE_P(AllKinds, EveryPolicy,
                         ::testing::Values(EvictionKind::kLru, EvictionKind::kFifo,
                                           EvictionKind::kRandom,
                                           EvictionKind::kReservedLru,
                                           EvictionKind::kHpe, EvictionKind::kMhpe),
                         [](const auto& pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

TEST_P(EveryPolicy, VictimIsAlwaysAValidUnpinnedChunk) {
  ChunkChain chain(64);
  fill(chain, 100);
  chain.note_pages_migrated(128);
  auto pol = make(chain);
  for (int i = 0; i < 50; ++i) {
    const ChunkId v = pol->select_victim();
    ASSERT_NE(v, kInvalidChunk);
    ASSERT_TRUE(chain.contains(v));
    ASSERT_FALSE(chain.entry(v).pinned());
    pol->on_chunk_evicted(chain.entry(v));
    chain.erase(v);
  }
}

TEST_P(EveryPolicy, SingleEntryChainSelectsIt) {
  ChunkChain chain(64);
  fill(chain, 1);
  auto pol = make(chain);
  EXPECT_EQ(pol->select_victim(), 0u);
}

TEST_P(EveryPolicy, HeavyPinningNeverYieldsPinnedVictim) {
  ChunkChain chain(64);
  fill(chain, 40);
  chain.note_pages_migrated(128);
  // Pin all but chunks 5 and 23.
  for (auto& e : chain)
    if (e.id != 5 && e.id != 23) ++e.pin_count;
  auto pol = make(chain);
  for (int i = 0; i < 20; ++i) {
    const ChunkId v = pol->select_victim();
    ASSERT_TRUE(v == 5 || v == 23) << to_string(GetParam());
  }
}

TEST_P(EveryPolicy, DrainsChainCompletely) {
  ChunkChain chain(64);
  fill(chain, 30);
  chain.note_pages_migrated(128);
  auto pol = make(chain);
  std::set<ChunkId> evicted;
  while (!chain.empty()) {
    const ChunkId v = pol->select_victim();
    ASSERT_NE(v, kInvalidChunk);
    ASSERT_TRUE(evicted.insert(v).second) << "victim repeated: " << v;
    pol->on_chunk_evicted(chain.entry(v));
    chain.erase(v);
    chain.note_pages_migrated(16);
    // Interval boundaries may fire mid-drain; policies must tolerate them.
    pol->on_interval_boundary();
  }
  EXPECT_EQ(evicted.size(), 30u);
}

TEST_P(EveryPolicy, InsertPositionDefaultsToTail) {
  ChunkChain chain(64);
  fill(chain, 10);
  auto pol = make(chain);
  EXPECT_EQ(pol->insert_position(999), InsertPosition::kTail);
}

}  // namespace
}  // namespace uvmsim
