// HPE: counter-based classification and the prefetch-pollution failure mode
// the paper's Inefficiency 1 describes.
#include "policy/hpe.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

struct HpeFixture : ::testing::Test {
  ChunkChain chain{64};
  PolicyConfig cfg;

  void fill(u32 n, u32 counter) {
    for (ChunkId c = 0; c < n; ++c) {
      ChunkEntry& e = chain.insert(c);
      e.resident = TouchBits::all();
      e.hpe_counter = counter;
    }
  }
};

TEST_F(HpeFixture, ClassifiesRegularWhenCountersHigh) {
  fill(100, /*counter=*/16);
  HpePolicy pol(chain, cfg);
  (void)pol.select_victim();
  EXPECT_EQ(pol.category(), HpePolicy::Category::kRegular);
  EXPECT_EQ(pol.strategy(), HpePolicy::Strategy::kMruC);
}

TEST_F(HpeFixture, ClassifiesIrregular1WhenCountersLow) {
  fill(100, /*counter=*/2);
  HpePolicy pol(chain, cfg);
  (void)pol.select_victim();
  EXPECT_EQ(pol.category(), HpePolicy::Category::kIrregular1);
  EXPECT_EQ(pol.strategy(), HpePolicy::Strategy::kLru);
}

TEST_F(HpeFixture, ClassifiesIrregular2InBetween) {
  // Half the chunks qualified, half not -> irregular#2.
  for (ChunkId c = 0; c < 100; ++c) {
    ChunkEntry& e = chain.insert(c);
    e.resident = TouchBits::all();
    e.hpe_counter = (c % 2 == 0) ? 16 : 2;
  }
  HpePolicy pol(chain, cfg);
  (void)pol.select_victim();
  EXPECT_EQ(pol.category(), HpePolicy::Category::kIrregular2);
}

// Inefficiency 1: whole-chunk prefetching sets every counter to chunk size,
// so an irregular application is misclassified as regular.
TEST_F(HpeFixture, PrefetchPollutionMisclassifiesIrregular) {
  // Irregular app: only 2 pages of each chunk were ever demanded, but
  // prefetching migrated all 16 -> counter = 16 + touches.
  fill(100, /*counter=*/16 + 2);
  HpePolicy pol(chain, cfg);
  (void)pol.select_victim();
  EXPECT_EQ(pol.category(), HpePolicy::Category::kRegular);  // wrong on purpose
}

TEST_F(HpeFixture, MruCSelectsQualifiedFromOldPartitionMru) {
  fill(50, /*counter=*/16);
  chain.note_pages_migrated(128);         // everything old
  chain.entry(49).hpe_counter = 3;        // MRU-most chunk not qualified
  HpePolicy pol(chain, cfg);
  EXPECT_EQ(pol.select_victim(), 48u);    // first qualified from the MRU end
}

TEST_F(HpeFixture, LruPathSelectsHead) {
  fill(50, /*counter=*/2);
  HpePolicy pol(chain, cfg);
  EXPECT_EQ(pol.select_victim(), 0u);
}

TEST_F(HpeFixture, RegularAdjustsSearchSkipOnWrongEvictions) {
  fill(100, 16);
  chain.note_pages_migrated(128);
  HpePolicy pol(chain, cfg);
  // One interval where the single eviction is wrong -> skip grows.
  const ChunkId v = pol.select_victim();
  pol.on_chunk_evicted(chain.entry(v));
  chain.erase(v);
  pol.on_fault(first_page_of_chunk(v));
  pol.on_interval_boundary();
  EXPECT_EQ(pol.search_skip(), 1u);
  // A clean interval relaxes it again.
  const ChunkId v2 = pol.select_victim();
  pol.on_chunk_evicted(chain.entry(v2));
  chain.erase(v2);
  pol.on_interval_boundary();
  EXPECT_EQ(pol.search_skip(), 0u);
}

TEST_F(HpeFixture, ReordersOnTouch) {
  fill(4, 16);
  HpePolicy pol(chain, cfg);
  EXPECT_TRUE(pol.reorder_on_touch());
}

}  // namespace
}  // namespace uvmsim
