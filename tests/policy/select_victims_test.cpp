// select_victims(): the batched victim-selection API the EvictionEngine
// drives. Contract (policy/eviction_policy.hpp): up to n distinct unpinned
// chunks, best victim first, side-effect free. LRU and FIFO override it
// with a single chain scan that must reproduce the exact victim sequence of
// repeated single selections; every other policy keeps the default
// one-victim forward so per-eviction state (Random's RNG draw, MHPE's
// forwarded search) is consulted once per actual eviction.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "policy/fifo.hpp"
#include "policy/hpe.hpp"
#include "policy/lru.hpp"
#include "policy/mhpe.hpp"
#include "policy/random.hpp"
#include "policy/reserved_lru.hpp"

namespace uvmsim {
namespace {

/// A chain with chunks 0..n-1 inserted in order (head = LRU = chunk 0).
ChunkChain make_chain(u32 n) {
  ChunkChain chain;
  for (ChunkId c = 0; c < n; ++c) chain.insert(c);
  return chain;
}

TEST(SelectVictims, LruReturnsHeadRunInOrder) {
  ChunkChain chain = make_chain(5);
  chain.entry(1).pin_count = 1;  // pinned chunks must be skipped
  LruPolicy lru(chain);
  EXPECT_EQ(lru.select_victims(3), (std::vector<ChunkId>{0, 2, 3}));
}

TEST(SelectVictims, LruClampsToAvailableUnpinned) {
  ChunkChain chain = make_chain(4);
  chain.entry(0).pin_count = 2;
  LruPolicy lru(chain);
  EXPECT_EQ(lru.select_victims(100), (std::vector<ChunkId>{1, 2, 3}));
}

TEST(SelectVictims, AllPinnedYieldsEmpty) {
  ChunkChain chain = make_chain(3);
  for (ChunkId c = 0; c < 3; ++c) chain.entry(c).pin_count = 1;
  LruPolicy lru(chain);
  EXPECT_TRUE(lru.select_victims(2).empty());
}

TEST(SelectVictims, ZeroRequestYieldsEmpty) {
  ChunkChain chain = make_chain(3);
  LruPolicy lru(chain);
  FifoPolicy fifo(chain);
  RandomPolicy random(chain, 7);
  EXPECT_TRUE(lru.select_victims(0).empty());
  EXPECT_TRUE(fifo.select_victims(0).empty());
  EXPECT_TRUE(random.select_victims(0).empty());
}

// The batched scan must yield exactly the sequence n single selections
// would, given that the engine erases each victim before asking again.
TEST(SelectVictims, LruBatchMatchesIteratedSingleSelection) {
  ChunkChain batched = make_chain(6);
  batched.entry(2).pin_count = 1;
  LruPolicy lru_batched(batched);
  const std::vector<ChunkId> batch = lru_batched.select_victims(4);

  ChunkChain single = make_chain(6);
  single.entry(2).pin_count = 1;
  LruPolicy lru_single(single);
  std::vector<ChunkId> iterated;
  for (int i = 0; i < 4; ++i) {
    const ChunkId v = lru_single.select_victim();
    ASSERT_NE(v, kInvalidChunk);
    iterated.push_back(v);
    single.erase(v);
  }
  EXPECT_EQ(batch, iterated);
}

TEST(SelectVictims, FifoBatchMatchesIteratedSingleSelection) {
  ChunkChain batched = make_chain(5);
  batched.entry(0).pin_count = 1;
  FifoPolicy fifo_batched(batched);
  const std::vector<ChunkId> batch = fifo_batched.select_victims(3);

  ChunkChain single = make_chain(5);
  single.entry(0).pin_count = 1;
  FifoPolicy fifo_single(single);
  std::vector<ChunkId> iterated;
  for (int i = 0; i < 3; ++i) {
    const ChunkId v = fifo_single.select_victim();
    ASSERT_NE(v, kInvalidChunk);
    iterated.push_back(v);
    single.erase(v);
  }
  EXPECT_EQ(batch, iterated);
}

// Selection must not mutate policy or chain state: two consecutive calls
// with no eviction in between see the same world and give the same answer.
TEST(SelectVictims, SelectionIsSideEffectFreeForChainScans) {
  ChunkChain chain = make_chain(6);
  chain.entry(3).pin_count = 1;
  LruPolicy lru(chain);
  const auto first = lru.select_victims(4);
  const auto second = lru.select_victims(4);
  EXPECT_EQ(first, second);
  EXPECT_EQ(chain.size(), 6u);
}

// Policies with per-eviction state keep the default single-victim forward:
// select_victims(n) on one instance equals {select_victim()} on an
// identically-constructed twin, no matter how large n is.
TEST(SelectVictims, StatefulPoliciesDefaultToSingleVictim) {
  PolicyConfig cfg;

  {
    ChunkChain a = make_chain(8), b = make_chain(8);
    RandomPolicy pa(a, cfg.seed), pb(b, cfg.seed);
    EXPECT_EQ(pa.select_victims(5), std::vector<ChunkId>{pb.select_victim()});
  }
  {
    ChunkChain a = make_chain(8), b = make_chain(8);
    ReservedLruPolicy pa(a, 0.25), pb(b, 0.25);
    EXPECT_EQ(pa.select_victims(5), std::vector<ChunkId>{pb.select_victim()});
  }
  {
    ChunkChain a = make_chain(8), b = make_chain(8);
    HpePolicy pa(a, cfg), pb(b, cfg);
    EXPECT_EQ(pa.select_victims(5), std::vector<ChunkId>{pb.select_victim()});
  }
  {
    ChunkChain a = make_chain(8), b = make_chain(8);
    MhpePolicy pa(a, cfg), pb(b, cfg);
    EXPECT_EQ(pa.select_victims(5), std::vector<ChunkId>{pb.select_victim()});
  }
}

}  // namespace
}  // namespace uvmsim
