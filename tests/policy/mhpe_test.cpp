// MHPE (Algorithm 1) mechanics, driven directly against a chunk chain.
#include "policy/mhpe.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

struct MhpeFixture : ::testing::Test {
  ChunkChain chain{64};
  PolicyConfig cfg;

  /// Insert `n` fully-touched resident chunks (arrival order 0..n-1).
  void fill(u32 n) {
    for (ChunkId c = 0; c < n; ++c) {
      ChunkEntry& e = chain.insert(c);
      e.resident = TouchBits::all();
      e.touched = TouchBits::all();
    }
  }

  /// Simulate evicting `chunk` through the policy (caller picks it).
  void evict(MhpePolicy& pol, ChunkId chunk) {
    pol.on_chunk_evicted(chain.entry(chunk));
    chain.erase(chunk);
  }
};

TEST_F(MhpeFixture, UntouchBucketsMatchPaperRanges) {
  // [0-3] [4-10] [11-17] [18-24] [25-31] for T1 = 32 (paper §VI-A).
  EXPECT_EQ(MhpePolicy::untouch_bucket(0, 32), 0u);
  EXPECT_EQ(MhpePolicy::untouch_bucket(3, 32), 0u);
  EXPECT_EQ(MhpePolicy::untouch_bucket(4, 32), 1u);
  EXPECT_EQ(MhpePolicy::untouch_bucket(10, 32), 1u);
  EXPECT_EQ(MhpePolicy::untouch_bucket(11, 32), 2u);
  EXPECT_EQ(MhpePolicy::untouch_bucket(17, 32), 2u);
  EXPECT_EQ(MhpePolicy::untouch_bucket(18, 32), 3u);
  EXPECT_EQ(MhpePolicy::untouch_bucket(24, 32), 3u);
  EXPECT_EQ(MhpePolicy::untouch_bucket(25, 32), 4u);
  EXPECT_EQ(MhpePolicy::untouch_bucket(31, 32), 4u);
  EXPECT_EQ(MhpePolicy::untouch_bucket(40, 32), 4u);  // saturates above T1
}

TEST_F(MhpeFixture, StartsWithMruStrategy) {
  fill(300);
  MhpePolicy pol(chain, cfg);
  EXPECT_EQ(pol.strategy(), MhpePolicy::Strategy::kMru);
}

TEST_F(MhpeFixture, InitialForwardDistanceFromChainLength) {
  // chain/100 clamped to [2, 8].
  {
    fill(300);  // 300/100 = 3
    MhpePolicy pol(chain, cfg);
    (void)pol.select_victim();
    EXPECT_EQ(pol.forward_distance(), 3u);
  }
  {
    ChunkChain small(64);
    for (ChunkId c = 0; c < 50; ++c) {
      auto& e = small.insert(c);
      e.resident = TouchBits::all();
    }
    MhpePolicy pol(small, cfg);
    (void)pol.select_victim();
    EXPECT_EQ(pol.forward_distance(), 2u);  // 0 clamps up to fd_min
  }
  {
    ChunkChain big(64);
    for (ChunkId c = 0; c < 2000; ++c) {
      auto& e = big.insert(c);
      e.resident = TouchBits::all();
    }
    MhpePolicy pol(big, cfg);
    (void)pol.select_victim();
    EXPECT_EQ(pol.forward_distance(), 8u);  // 20 clamps down to fd_max
  }
}

TEST_F(MhpeFixture, MruSelectsFromOldPartitionWithForwardDistance) {
  fill(300);                       // all arrive in interval 0
  chain.note_pages_migrated(128);  // -> interval 2: all 300 now "old"
  MhpePolicy pol(chain, cfg);
  // fd = 3: skip chunks 299, 298, 297 from the MRU end -> victim 296.
  EXPECT_EQ(pol.select_victim(), 296u);
}

TEST_F(MhpeFixture, MruSkipsNewAndMiddlePartitions) {
  fill(200);                       // interval 0
  chain.note_pages_migrated(64);   // interval 1
  for (ChunkId c = 200; c < 204; ++c) {
    auto& e = chain.insert(c);     // middle (after next advance)
    e.resident = TouchBits::all();
  }
  chain.note_pages_migrated(64);   // interval 2
  for (ChunkId c = 204; c < 208; ++c) {
    auto& e = chain.insert(c);     // new
    e.resident = TouchBits::all();
  }
  MhpePolicy pol(chain, cfg);
  // fd = 208/100 = 2: victims come from the old partition (ids < 200),
  // skipping 199 and 198.
  EXPECT_EQ(pol.select_victim(), 197u);
}

TEST_F(MhpeFixture, SwitchesToLruWhenU1ReachesT1) {
  fill(300);
  chain.note_pages_migrated(128);
  MhpePolicy pol(chain, cfg);
  // Evict 4 chunks with untouch level 8 each -> U1 = 32 >= T1.
  for (int i = 0; i < 4; ++i) {
    const ChunkId v = pol.select_victim();
    ChunkEntry& e = chain.entry(v);
    e.touched = TouchBits(0x00FF);  // 8 touched, 8 untouched
    evict(pol, v);
  }
  pol.on_interval_boundary();
  EXPECT_EQ(pol.strategy(), MhpePolicy::Strategy::kLru);
  // LRU victim is the head.
  EXPECT_EQ(pol.select_victim(), chain.begin()->id);
}

TEST_F(MhpeFixture, StaysMruWhenUntouchLow) {
  fill(300);
  chain.note_pages_migrated(128);
  MhpePolicy pol(chain, cfg);
  for (int i = 0; i < 4; ++i) evict(pol, pol.select_victim());  // untouch 0
  pol.on_interval_boundary();
  EXPECT_EQ(pol.strategy(), MhpePolicy::Strategy::kMru);
}

TEST_F(MhpeFixture, SwitchesViaU2AtFourthInterval) {
  fill(300);
  chain.note_pages_migrated(128);
  MhpePolicy pol(chain, cfg);
  // Per interval: U1 = 12 (< T1 = 32) but cumulative over 4 intervals
  // U2 = 48 >= T2 = 40 -> switch at the fourth boundary.
  for (int interval = 0; interval < 4; ++interval) {
    ASSERT_EQ(pol.strategy(), MhpePolicy::Strategy::kMru) << interval;
    const ChunkId v = pol.select_victim();
    ChunkEntry& e = chain.entry(v);
    e.touched = TouchBits(0x000F);  // 4 touched -> untouch 12
    evict(pol, v);
    pol.on_interval_boundary();
  }
  EXPECT_EQ(pol.strategy(), MhpePolicy::Strategy::kLru);
}

TEST_F(MhpeFixture, SwitchIsOneWay) {
  fill(300);
  chain.note_pages_migrated(128);
  MhpePolicy pol(chain, cfg);
  const ChunkId v = pol.select_victim();
  chain.entry(v).touched = TouchBits::none();  // untouch 16... exceeds ranges
  chain.entry(v).touched = TouchBits(0x0001);
  // Evict 3 chunks, untouch 15 each -> U1 = 45 >= 32.
  for (int i = 0; i < 3; ++i) {
    const ChunkId c = pol.select_victim();
    chain.entry(c).touched = TouchBits(0x0001);
    evict(pol, c);
  }
  pol.on_interval_boundary();
  ASSERT_EQ(pol.strategy(), MhpePolicy::Strategy::kLru);
  // Clean intervals afterwards never switch back.
  for (int i = 0; i < 6; ++i) {
    evict(pol, pol.select_victim());
    pol.on_interval_boundary();
    ASSERT_EQ(pol.strategy(), MhpePolicy::Strategy::kLru);
  }
}

TEST_F(MhpeFixture, ForwardDistanceGrowsWithWrongEvictions) {
  fill(300);
  chain.note_pages_migrated(128);
  MhpePolicy pol(chain, cfg);
  (void)pol.select_victim();
  const u32 fd0 = pol.forward_distance();
  // Evict two chunks (fully touched: untouch 0), then fault back into both.
  for (int i = 0; i < 2; ++i) {
    const ChunkId v = pol.select_victim();
    evict(pol, v);
    pol.on_fault(first_page_of_chunk(v));  // wrong eviction
  }
  pol.on_interval_boundary();
  EXPECT_EQ(pol.forward_distance(), fd0 + 2);  // max(bucket(0)=0, W=2)
  EXPECT_EQ(pol.wrong_evictions_total(), 2u);
}

TEST_F(MhpeFixture, ForwardDistanceCapAtT3) {
  cfg.t3_forward_limit = 4;
  fill(300);
  chain.note_pages_migrated(128);
  MhpePolicy pol(chain, cfg);
  (void)pol.select_victim();
  // Push the distance past the cap: adjustments stop once fd > T3.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) {
      const ChunkId v = pol.select_victim();
      evict(pol, v);
      pol.on_fault(first_page_of_chunk(v));
    }
    pol.on_interval_boundary();
  }
  // fd can exceed T3 by at most one adjustment step (<= 4).
  EXPECT_LE(pol.forward_distance(), cfg.t3_forward_limit + 4);
  EXPECT_GT(pol.forward_distance(), cfg.t3_forward_limit);
}

TEST_F(MhpeFixture, WronglyEvictedChunkReinsertsAtHead) {
  fill(300);
  chain.note_pages_migrated(128);
  MhpePolicy pol(chain, cfg);
  const ChunkId v = pol.select_victim();
  evict(pol, v);
  pol.on_fault(first_page_of_chunk(v));
  EXPECT_EQ(pol.insert_position(v), InsertPosition::kHead);
  // The flag is consumed: a second migration of the same chunk is normal.
  EXPECT_EQ(pol.insert_position(v), InsertPosition::kTail);
  // Chunks never flagged go to the tail.
  EXPECT_EQ(pol.insert_position(9999), InsertPosition::kTail);
}

// §IV-B: a reinserted wrongly-evicted chunk must not be immediately
// re-victimised by the MRU search — even though its head stamp files it into
// the old partition, where a short partition would otherwise make it the
// search's fallback pick.
TEST_F(MhpeFixture, ReinsertedChunkIsShieldedFromMruSearch) {
  fill(3);
  chain.note_pages_migrated(128);  // -> interval 2: all three chunks are old
  MhpePolicy pol(chain, cfg);      // fd = clamp(3/100, 2, 8) = 2
  const ChunkId v = pol.select_victim();
  EXPECT_EQ(v, 0u);                // skip fd over {2, 1}, take the head
  evict(pol, v);
  pol.on_fault(first_page_of_chunk(v));         // wrong eviction detected
  ASSERT_EQ(pol.insert_position(v), InsertPosition::kHead);
  chain.insert(v, /*at_head=*/true);

  // Reinserted at the head and stamped old — but shielded: the search must
  // settle for another old chunk.
  EXPECT_EQ(chain.partition_of(chain.entry(v), false), Partition::kOld);
  EXPECT_EQ(pol.select_victim(), 1u);

  // The shield ages out after the next full interval.
  pol.on_interval_boundary();
  EXPECT_EQ(pol.select_victim(), 1u);
  pol.on_interval_boundary();
  EXPECT_EQ(pol.select_victim(), v);
}

TEST_F(MhpeFixture, ShieldYieldsWhenNoOtherCandidateExists) {
  fill(2);
  chain.note_pages_migrated(128);
  MhpePolicy pol(chain, cfg);
  evict(pol, 1);
  pol.on_fault(first_page_of_chunk(1));
  ASSERT_EQ(pol.insert_position(1), InsertPosition::kHead);
  chain.insert(1, /*at_head=*/true);
  evict(pol, 0);
  // Chunk 1 is shielded but is the only chunk left: the whole-chain fallback
  // still produces it rather than deadlocking the eviction path.
  EXPECT_EQ(pol.select_victim(), 1u);
}

TEST_F(MhpeFixture, WrongEvictionBufferIsBounded) {
  cfg.wrong_evict_min_entries = 8;
  fill(300);
  chain.note_pages_migrated(128);
  MhpePolicy pol(chain, cfg);
  (void)pol.select_victim();
  // 300/64 = 4 -> capacity 32.
  EXPECT_EQ(pol.wrong_buffer_capacity(), 32u);

  // Evict more chunks than the buffer holds; a fault on the oldest eviction
  // is no longer a wrong eviction.
  std::vector<ChunkId> victims;
  for (int i = 0; i < 40; ++i) {
    const ChunkId v = pol.select_victim();
    victims.push_back(v);
    evict(pol, v);
  }
  pol.on_fault(first_page_of_chunk(victims.front()));
  EXPECT_EQ(pol.wrong_evictions_total(), 0u);
  pol.on_fault(first_page_of_chunk(victims.back()));
  EXPECT_EQ(pol.wrong_evictions_total(), 1u);
}

TEST_F(MhpeFixture, MhpeDoesNotReorderOnTouch) {
  fill(10);
  MhpePolicy pol(chain, cfg);
  EXPECT_FALSE(pol.reorder_on_touch());
}

TEST_F(MhpeFixture, NeverSelectsPinned) {
  fill(300);
  chain.note_pages_migrated(128);
  for (ChunkId c = 290; c < 300; ++c) ++chain.entry(c).pin_count;
  MhpePolicy pol(chain, cfg);
  for (int i = 0; i < 20; ++i) {
    const ChunkId v = pol.select_victim();
    ASSERT_FALSE(chain.entry(v).pinned());
    evict(pol, v);
  }
}

TEST_F(MhpeFixture, RecordsUntouchHistoryForTables) {
  fill(300);
  chain.note_pages_migrated(128);
  MhpePolicy pol(chain, cfg);
  for (int interval = 0; interval < 3; ++interval) {
    const ChunkId v = pol.select_victim();
    chain.entry(v).touched = TouchBits(0x0FFF);  // untouch 4
    evict(pol, v);
    pol.on_interval_boundary();
  }
  ASSERT_EQ(pol.interval_untouch_history().size(), 3u);
  for (u32 u : pol.interval_untouch_history()) EXPECT_EQ(u, 4u);
}

}  // namespace
}  // namespace uvmsim
