// LRU, Random and reserved-LRU victim selection.
#include <gtest/gtest.h>

#include "policy/fifo.hpp"
#include "policy/lru.hpp"
#include "policy/random.hpp"
#include "policy/reserved_lru.hpp"

namespace uvmsim {
namespace {

ChunkChain make_chain(u32 n) {
  ChunkChain chain;
  for (ChunkId c = 0; c < n; ++c) chain.insert(c);
  return chain;
}

TEST(Lru, SelectsHead) {
  ChunkChain chain = make_chain(5);
  LruPolicy lru(chain);
  EXPECT_EQ(lru.select_victim(), 0u);
  EXPECT_TRUE(lru.reorder_on_touch());
}

TEST(Lru, SkipsPinned) {
  ChunkChain chain = make_chain(5);
  ++chain.entry(0).pin_count;
  ++chain.entry(1).pin_count;
  LruPolicy lru(chain);
  EXPECT_EQ(lru.select_victim(), 2u);
}

TEST(Lru, RecencyViaMoveToTail) {
  ChunkChain chain = make_chain(3);
  chain.move_to_tail(0);  // 0 becomes MRU
  LruPolicy lru(chain);
  EXPECT_EQ(lru.select_victim(), 1u);
}

TEST(Fifo, EvictsInArrivalOrderIgnoringTouches) {
  ChunkChain chain = make_chain(4);
  chain.move_to_tail(0);  // a touch-driven reorder would save chunk 0...
  FifoPolicy fifo(chain);
  EXPECT_FALSE(fifo.reorder_on_touch());  // ...but FIFO never reorders
  // The chain was physically reordered above, so the head is now 1.
  EXPECT_EQ(fifo.select_victim(), 1u);
}

TEST(Fifo, SkipsPinned) {
  ChunkChain chain = make_chain(4);
  ++chain.entry(0).pin_count;
  FifoPolicy fifo(chain);
  EXPECT_EQ(fifo.select_victim(), 1u);
}

TEST(Random, OnlyReturnsUnpinned) {
  ChunkChain chain = make_chain(10);
  for (ChunkId c = 0; c < 10; ++c)
    if (c != 7) ++chain.entry(c).pin_count;
  RandomPolicy rnd(chain, 1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rnd.select_victim(), 7u);
}

TEST(Random, IsDeterministicPerSeed) {
  ChunkChain a = make_chain(100), b = make_chain(100);
  RandomPolicy ra(a, 42), rb(b, 42);
  for (int i = 0; i < 50; ++i) ASSERT_EQ(ra.select_victim(), rb.select_victim());
}

TEST(Random, CoversTheChain) {
  ChunkChain chain = make_chain(8);
  RandomPolicy rnd(chain, 3);
  std::set<ChunkId> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rnd.select_victim());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ReservedLru, VictimAtReservedDepth) {
  // 10 chunks, 20% reserved -> victim at depth 2 from the LRU end.
  ChunkChain chain = make_chain(10);
  ReservedLruPolicy pol(chain, 0.20);
  EXPECT_EQ(pol.select_victim(), 2u);
}

TEST(ReservedLru, ZeroFractionDegeneratesToLru) {
  ChunkChain chain = make_chain(10);
  ReservedLruPolicy pol(chain, 0.0);
  EXPECT_EQ(pol.select_victim(), 0u);
}

TEST(ReservedLru, SkipsPinnedBeyondDepth) {
  ChunkChain chain = make_chain(10);
  ++chain.entry(2).pin_count;
  ReservedLruPolicy pol(chain, 0.20);
  EXPECT_EQ(pol.select_victim(), 3u);
}

TEST(ReservedLru, AllReservedFallsBackToLru) {
  ChunkChain chain = make_chain(4);
  ReservedLruPolicy pol(chain, 0.95);  // depth 3 of 4
  // Chunk 3 qualifies (depth 3); pin it and the policy degrades to LRU.
  ++chain.entry(3).pin_count;
  EXPECT_EQ(pol.select_victim(), 0u);
}

TEST(ReservedLru, NameReflectsFraction) {
  ChunkChain chain = make_chain(1);
  EXPECT_EQ(ReservedLruPolicy(chain, 0.10).name(), "LRU-10%");
  EXPECT_EQ(ReservedLruPolicy(chain, 0.20).name(), "LRU-20%");
}

}  // namespace
}  // namespace uvmsim
