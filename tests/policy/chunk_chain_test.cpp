#include "policy/chunk_chain.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(ChunkChain, InsertAtTailIsMru) {
  ChunkChain chain;
  chain.insert(1);
  chain.insert(2);
  chain.insert(3);
  EXPECT_EQ(chain.begin()->id, 1u);    // head = LRU
  EXPECT_EQ(chain.rbegin()->id, 3u);   // tail = MRU
  EXPECT_EQ(chain.size(), 3u);
}

TEST(ChunkChain, InsertAtHeadIsLru) {
  ChunkChain chain;
  chain.insert(1);
  chain.insert(2, /*at_head=*/true);
  EXPECT_EQ(chain.begin()->id, 2u);
}

TEST(ChunkChain, EraseReturnsFinalMetadata) {
  ChunkChain chain;
  ChunkEntry& e = chain.insert(9);
  e.touched.set(0);
  e.resident = TouchBits::all();
  const ChunkEntry out = chain.erase(9);
  EXPECT_EQ(out.id, 9u);
  EXPECT_EQ(out.untouch_level(), 15u);
  EXPECT_FALSE(chain.contains(9));
  EXPECT_TRUE(chain.empty());
}

TEST(ChunkChain, MoveToTailRefreshesRecency) {
  ChunkChain chain;
  chain.insert(1);
  chain.insert(2);
  chain.insert(3);
  chain.move_to_tail(1);
  EXPECT_EQ(chain.begin()->id, 2u);
  EXPECT_EQ(chain.rbegin()->id, 1u);
}

TEST(ChunkChain, IntervalAdvancesPerMigratedPages) {
  ChunkChain chain(/*interval_pages=*/64);
  EXPECT_EQ(chain.current_interval(), 0u);
  EXPECT_FALSE(chain.note_pages_migrated(63));
  EXPECT_TRUE(chain.note_pages_migrated(1));  // 64 pages -> interval 1
  EXPECT_EQ(chain.current_interval(), 1u);
  // "Four chunks are prefetched in one interval": 4 x 16 pages = 64.
  EXPECT_TRUE(chain.note_pages_migrated(4 * kChunkPages));
  EXPECT_EQ(chain.current_interval(), 2u);
}

// Fig 2: the chain is partitioned into old / middle / new by interval stamp.
TEST(ChunkChain, PartitionsFollowFig2) {
  ChunkChain chain(64);
  chain.insert(1);                // arrives in interval 0
  chain.note_pages_migrated(64);  // -> interval 1
  chain.insert(2);                // arrives in interval 1
  chain.note_pages_migrated(64);  // -> interval 2
  chain.insert(3);                // arrives in interval 2 (current)

  // Re-fetch after the last insert: insert() can grow the slab and
  // invalidate earlier ChunkEntry references.
  EXPECT_EQ(chain.partition_of(chain.entry(1), false), Partition::kOld);
  EXPECT_EQ(chain.partition_of(chain.entry(2), false), Partition::kMiddle);
  EXPECT_EQ(chain.partition_of(chain.entry(3), false), Partition::kNew);
}

TEST(ChunkChain, TouchPartitionUsesTouchStamp) {
  ChunkChain chain(64);
  ChunkEntry& a = chain.insert(1);
  chain.note_pages_migrated(128);  // -> interval 2; `a` is old by arrival
  EXPECT_EQ(chain.partition_of(a, /*by_touch=*/true), Partition::kOld);
  a.last_touch_interval = chain.current_interval();
  EXPECT_EQ(chain.partition_of(a, /*by_touch=*/true), Partition::kNew);
  EXPECT_EQ(chain.partition_of(a, /*by_touch=*/false), Partition::kOld);
}

// Fig 5: lifetime of eviction candidates. With chunks C1..C8 prefetched in
// order, LRU selects C1; MRU over the old partition selects the most
// recently arrived *old* chunk; skipping 2 from there reaches C2 when only
// C1..C4 are old.
TEST(ChunkChain, Fig5LifetimeExample) {
  ChunkChain chain(64);
  for (ChunkId c = 1; c <= 4; ++c) chain.insert(c);  // interval 0
  chain.note_pages_migrated(64);
  chain.note_pages_migrated(64);                     // -> interval 2
  for (ChunkId c = 5; c <= 8; ++c) chain.insert(c);  // current interval

  // LRU position: C1.
  EXPECT_EQ(chain.begin()->id, 1u);
  // MRU of the old partition: C4 (C5..C8 are new).
  ChunkId mru_old = kInvalidChunk;
  u32 skipped = 0;
  ChunkId skip2 = kInvalidChunk;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (chain.partition_of(*it, false) != Partition::kOld) continue;
    if (mru_old == kInvalidChunk) mru_old = it->id;
    if (skipped == 2 && skip2 == kInvalidChunk) skip2 = it->id;
    ++skipped;
  }
  EXPECT_EQ(mru_old, 4u);
  EXPECT_EQ(skip2, 2u);  // forward distance 2 evicts C2
}

TEST(ChunkChain, PinCounting) {
  ChunkChain chain;
  ChunkEntry& e = chain.insert(1);
  EXPECT_FALSE(e.pinned());
  ++e.pin_count;
  ++e.pin_count;
  EXPECT_TRUE(e.pinned());
  --e.pin_count;
  EXPECT_TRUE(e.pinned());
  --e.pin_count;
  EXPECT_FALSE(e.pinned());
}

TEST(ChunkChain, FindMissingReturnsNull) {
  ChunkChain chain;
  EXPECT_EQ(chain.find(42), nullptr);
  chain.insert(42);
  ASSERT_NE(chain.find(42), nullptr);
  EXPECT_EQ(chain.find(42)->id, 42u);
}

// Regression: a batch larger than one interval used to collapse all crossed
// boundaries into a single `true`, so per-interval work (MHPE threshold
// checks) ran once instead of once per boundary. A tree prefetcher can plan
// hundreds of pages in one migration.
TEST(ChunkChain, LargeBatchReportsEveryBoundaryCrossed) {
  ChunkChain chain(/*interval_pages=*/64);
  EXPECT_EQ(chain.note_pages_migrated(300), 4u);  // 300/64 -> interval 4
  EXPECT_EQ(chain.current_interval(), 4u);
  EXPECT_EQ(chain.pages_migrated(), 300u);
  EXPECT_EQ(chain.note_pages_migrated(20), 1u);   // 320 -> interval 5
  EXPECT_EQ(chain.note_pages_migrated(10), 0u);   // 330: same interval
  EXPECT_EQ(chain.current_interval(), 5u);
}

// Regression: reinserting a wrongly-evicted chunk at the LRU head used to
// stamp it with the *current* interval, filing it into the `new` partition
// despite sitting at the old end of the chain — breaking Fig 2's invariant
// that partitions are contiguous segments and hiding the chunk from MHPE's
// old-partition MRU search.
TEST(ChunkChain, HeadReinsertLandsInOldPartition) {
  ChunkChain chain(64);
  chain.note_pages_migrated(64 * 5);  // -> interval 5
  ChunkEntry& back = chain.insert(7, /*at_head=*/true);
  EXPECT_EQ(chain.partition_of(back, /*by_touch=*/false), Partition::kOld);
  EXPECT_EQ(chain.partition_of(back, /*by_touch=*/true), Partition::kOld);
  // A normal tail insert in the same interval is still `new`.
  ChunkEntry& fresh = chain.insert(8);
  EXPECT_EQ(chain.partition_of(fresh, /*by_touch=*/false), Partition::kNew);
}

TEST(ChunkChain, HeadReinsertStampSaturatesAtIntervalZero) {
  ChunkChain chain(64);
  EXPECT_EQ(chain.insert(1, /*at_head=*/true).arrival_interval, 0u);
  chain.note_pages_migrated(64);  // -> interval 1
  EXPECT_EQ(chain.insert(2, /*at_head=*/true).arrival_interval, 0u);
}

// --- Slab-storage behaviour (fast-path rewrite) -----------------------------

// Steady-state thrash (insert at tail, erase at head) must reuse freed slab
// slots instead of growing: once the working set is resident, eviction churn
// is allocation-free.
TEST(ChunkChain, ChurnReusesFreedSlots) {
  ChunkChain chain;
  for (ChunkId c = 0; c < 64; ++c) chain.insert(c);
  const std::size_t cap = chain.slab_capacity();
  for (ChunkId c = 64; c < 10'064; ++c) {
    chain.erase(chain.begin()->id);
    chain.insert(c);
  }
  EXPECT_EQ(chain.size(), 64u);
  EXPECT_EQ(chain.slab_capacity(), cap);  // no growth through 10k churns
  // Order is still exact FIFO of insertion after all that churn.
  ChunkId expect = 10'000;
  for (const ChunkEntry& e : chain) EXPECT_EQ(e.id, expect++);
}

// Per-chunk metadata must survive erase/insert churn of *other* chunks even
// though inserts may reuse freed slots and grow the slab: ids keep resolving
// to their own entries, never to a recycled slot's stale state.
TEST(ChunkChain, MetadataStableAcrossSlotReuse) {
  ChunkChain chain;
  for (ChunkId c = 0; c < 32; ++c) {
    ChunkEntry& e = chain.insert(c);
    e.hpe_counter = static_cast<u32>(c) * 10;
    e.touched.set(static_cast<u32>(c) % kChunkPages);
  }
  // Erase the even chunks; their slots return to the free list.
  for (ChunkId c = 0; c < 32; c += 2) chain.erase(c);
  // New chunks land in recycled slots and must start from clean state.
  for (ChunkId c = 100; c < 116; ++c) {
    const ChunkEntry& e = chain.insert(c);
    EXPECT_EQ(e.hpe_counter, 0u);
    EXPECT_EQ(e.touched.count(), 0u);
    EXPECT_EQ(e.pin_count, 0u);
  }
  // The surviving odd chunks still carry their own metadata.
  for (ChunkId c = 1; c < 32; c += 2) {
    ASSERT_TRUE(chain.contains(c));
    EXPECT_EQ(chain.entry(c).hpe_counter, static_cast<u32>(c) * 10);
    EXPECT_TRUE(chain.entry(c).touched.test(static_cast<u32>(c) % kChunkPages));
  }
}

TEST(ChunkChain, MoveConstructAndAssignKeepSlabIndicesValid) {
  ChunkChain a(64);
  for (ChunkId c = 0; c < 16; ++c) a.insert(c).touched.set(0);
  // Churn so the slab has free-listed holes and non-trivial links.
  for (ChunkId c = 0; c < 8; ++c) a.erase(c);
  a.move_to_tail(9);

  ChunkChain b(std::move(a));
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b.begin()->id, 8u);
  EXPECT_EQ(b.rbegin()->id, 9u);  // splice survived the move
  for (ChunkId c = 8; c < 16; ++c) {
    ASSERT_TRUE(b.contains(c));
    EXPECT_TRUE(b.entry(c).touched.test(0));
  }
  // The moved-into chain keeps working: reuse, insert, erase.
  b.insert(100);
  EXPECT_EQ(b.rbegin()->id, 100u);
  b.erase(100);

  // Move-assignment (the ChainSet teardown path).
  ChunkChain c(64);
  c.insert(555);
  c = std::move(b);
  EXPECT_FALSE(c.contains(555));
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.rbegin()->id, 9u);
}

TEST(ChunkChain, ReservePreventsSlabGrowth) {
  ChunkChain chain;
  chain.reserve(256);
  for (ChunkId c = 0; c < 256; ++c) chain.insert(c);
  EXPECT_EQ(chain.slab_capacity(), 256u);
  EXPECT_LE(chain.index_load_factor(), 0.76);
}

TEST(ChunkEntry, UntouchLevelCountsResidentUntouched) {
  ChunkEntry e;
  // 12 resident, 4 of them touched -> untouch level 8.
  for (u32 i = 0; i < 12; ++i) e.resident.set(i);
  for (u32 i = 0; i < 4; ++i) e.touched.set(i);
  EXPECT_EQ(e.untouch_level(), 8u);
  // Touched-but-since-evicted pages never count negative.
  e.touched.set(14);  // touched yet not resident (stale bit)
  EXPECT_EQ(e.untouch_level(), 8u);
}

}  // namespace
}  // namespace uvmsim
